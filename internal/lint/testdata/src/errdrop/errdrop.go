// Package errdrop is a miclint test fixture: discarded control-plane
// errors via bare calls and blank assignments, the out-of-scope callees
// that must stay silent, and a reviewed suppression.
package errdrop

import (
	"fmt"

	"mic/internal/flowtable"
	"mic/internal/mic"
	"mic/internal/sim"
)

// Bare call: a flow-table install whose refusal vanishes.
func bareInstall(t *flowtable.Table, e *flowtable.Entry, now sim.Time) {
	t.TryInsert(e, now) // want `error result of flowtable.TryInsert discarded by bare call`
}

// Blank assignment of a single error result.
func blankInstall(t *flowtable.Table, e *flowtable.Entry, now sim.Time) {
	_ = t.TryInsert(e, now) // want `error result of flowtable.TryInsert assigned to blank identifier`
}

// Blank error slot of a multi-result control-plane call.
func blankTuple(mc *mic.MC) mic.ChannelOptions {
	ip, _ := mc.ResolveTarget("svc") // want `error result of mic.ResolveTarget assigned to blank identifier`
	_ = ip
	return mic.ChannelOptions{}
}

// Handled: binding and checking the error is the expected shape.
func handled(t *flowtable.Table, e *flowtable.Entry, now sim.Time) error {
	if err := t.TryInsert(e, now); err != nil {
		return err
	}
	return nil
}

// Out of scope: fmt is not a control-plane package, so its (n, err)
// results may be dropped without comment.
func outOfScope() {
	fmt.Println("status")
}

// Reviewed suppression: a best-effort teardown.
func suppressed(mc *mic.MC) {
	// lint:ignore errdrop fixture: best-effort close on a teardown path, nobody is left to observe the error
	_ = mc.CloseChannel(1, nil)
}

// A step-down teardown: a deposed master sweeping its channels down must
// not silently drop a close refusal — an unclosed channel is exactly the
// zombie state the next takeover's reconciliation has to mop up, so the
// sweep either checks the error or carries a reviewed suppression.
func stepDownSweepBare(mc *mic.MC, ids []uint64) {
	for _, id := range ids {
		mc.CloseChannel(id, nil) // want `error result of mic.CloseChannel discarded by bare call`
	}
}

func stepDownSweepBlank(mc *mic.MC, ids []uint64) {
	for _, id := range ids {
		_ = mc.CloseChannel(id, nil) // want `error result of mic.CloseChannel assigned to blank identifier`
	}
}

// The expected teardown shape: count the refusals so the step-down report
// can say how much the takeover's reconciliation will find.
func stepDownSweepChecked(mc *mic.MC, ids []uint64) int {
	refused := 0
	for _, id := range ids {
		if err := mc.CloseChannel(id, nil); err != nil {
			refused++
		}
	}
	return refused
}
