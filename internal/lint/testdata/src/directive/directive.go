// Package directive is a miclint test fixture for suppression parsing:
// malformed and misplaced lint:ignore directives must not suppress, and
// must surface as findings themselves.
//
// lint:deterministic
package directive

import "time"

// typo: the check name does not exist, so the directive reports itself and
// the diagnostic still fires.
func typoCheck() time.Time {
	// lint:ignore virtclck misspelled check name // want `unknown check virtclck`
	return time.Now() // want `time.Now reads the wall clock`
}

// position drift: a directive separated from the code it once annotated
// (same line or line directly above) stops suppressing.
func drifted() time.Time {
	// lint:ignore virtclock drifted away from its statement

	return time.Now() // want `time.Now reads the wall clock`
}

// wellPlaced still works, directly above the flagged line.
func wellPlaced() time.Time {
	// lint:ignore virtclock fixture demonstrating a valid suppression
	return time.Now()
}

// sameLine works too.
func sameLine() time.Time {
	return time.Now() // lint:ignore virtclock fixture demonstrating a same-line suppression
}
