package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go command would, e.g. "./...") relative to
// dir and returns the matched packages parsed and type-checked.
//
// Dependencies — including the standard library — are resolved from
// compiler export data produced by `go list -export`, which works from the
// local build cache without network access. Only non-test Go files are
// analyzed: test files run under the race detector already, and the
// determinism contract governs code that executes inside the simulation
// engine.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      p.ImportPath,
			Dir:       p.Dir,
			GoFiles:   p.GoFiles,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
