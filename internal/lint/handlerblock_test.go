package lint

import "testing"

func TestHandlerBlock(t *testing.T) {
	runTestdata(t, []*Analyzer{HandlerBlock}, "handlerblock")
}
