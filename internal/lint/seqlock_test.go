package lint

import "testing"

func TestSeqLock(t *testing.T) {
	runTestdata(t, []*Analyzer{SeqLock}, "seqlock")
}
