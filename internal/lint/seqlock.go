package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// SeqLock enforces documented lock discipline: a struct field whose comment
// says `guarded by <mu>` may only be read or written inside a function that
// acquires that mutex. The check is containment-based, not flow-based: a
// function counts as "holding" the mutex if its body contains a Lock/RLock
// call (or a deferred Unlock/RUnlock) on the same mutex field. Functions
// that construct the struct — their body contains a composite literal of
// the guarded type, so the value is not yet shared — are exempt.
var SeqLock = &Analyzer{
	Name: "seqlock",
	Doc:  "flags accesses to fields documented `guarded by <mu>` outside functions that lock <mu>",
	Run:  runSeqLock,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo is one documented guard relationship.
type guardInfo struct {
	mu     types.Object // the mutex field object
	muName string
	owner  types.Type // the struct type, for constructor exemption
}

func runSeqLock(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		var funcs []*ast.FuncDecl
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			g, guarded := guards[selection.Obj()]
			if !guarded {
				return true
			}
			fd := enclosingFunc(funcs, sel)
			if fd == nil {
				return true
			}
			if locksMutex(pass, fd, g.mu) || constructsOwner(pass, fd, g.owner) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is documented `guarded by %s` but %s does not lock %s",
				selection.Obj().Name(), g.muName, fd.Name.Name, g.muName)
			return true
		})
	}
	return nil
}

// collectGuards finds struct fields documented `guarded by <mu>` and
// resolves the named mutex field within the same struct.
func collectGuards(pass *Pass) map[types.Object]guardInfo {
	guards := map[types.Object]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			ownerObj := pass.TypesInfo.Defs[ts.Name]
			if ownerObj == nil {
				return true
			}
			fieldObjs := map[string]types.Object{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldObjs[name.Name] = pass.TypesInfo.Defs[name]
				}
			}
			for _, field := range st.Fields.List {
				muName := guardComment(field)
				if muName == "" {
					continue
				}
				mu, ok := fieldObjs[muName]
				if !ok {
					pass.Reportf(field.Pos(),
						"field documented `guarded by %s` but struct %s has no field %s",
						muName, ts.Name.Name, muName)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil && obj != mu {
						guards[obj] = guardInfo{mu: mu, muName: muName, owner: ownerObj.Type()}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// enclosingFunc returns the top-level function declaration whose body
// contains pos. Closures inherit their enclosing function's verdict: a
// callback defined inside a locked region is treated as locked (it may
// escape, but that is what suppressions with reasons are for).
func enclosingFunc(funcs []*ast.FuncDecl, n ast.Node) *ast.FuncDecl {
	for _, fd := range funcs {
		if fd.Body.Pos() <= n.Pos() && n.End() <= fd.Body.End() {
			return fd
		}
	}
	return nil
}

// locksMutex reports whether fd's body contains a Lock/RLock (or deferred
// Unlock/RUnlock) call on the mutex field object mu.
func locksMutex(pass *Pass, fd *ast.FuncDecl, mu types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return true
		}
		recv, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if rs, ok := pass.TypesInfo.Selections[recv]; ok && rs.Obj() == mu {
			found = true
		}
		return !found
	})
	return found
}

// constructsOwner reports whether fd's body builds a composite literal of
// the guarded struct — the constructor case, where the value is private.
func constructsOwner(pass *Pass, fd *ast.FuncDecl, owner types.Type) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || found {
			return !found
		}
		if tv, ok := pass.TypesInfo.Types[cl]; ok && types.Identical(tv.Type, owner) {
			found = true
		}
		return !found
	})
	return found
}
