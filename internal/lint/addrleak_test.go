package lint

import "testing"

func TestAddrLeakGolden(t *testing.T) {
	runTestdata(t, []*Analyzer{AddrLeak}, "addrleak")
}
