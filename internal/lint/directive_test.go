package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseDirectivesFromSrc(t *testing.T, src string) *directives {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return parseDirectives(fset, []*ast.File{f})
}

func TestIgnoreParsing(t *testing.T) {
	known := map[string]bool{"detrange": true, "virtclock": true, "directive": true}

	tests := []struct {
		name        string
		comment     string
		wantIgnores int
		wantProblem string // substring of the malformed-directive message, "" if none
	}{
		{"valid", "// lint:ignore detrange keys sorted below", 1, ""},
		{"valid no space after slashes", "//lint:ignore detrange keys sorted below", 1, ""},
		{"missing reason", "// lint:ignore detrange", 0, "needs a reason"},
		{"reason all spaces", "// lint:ignore detrange   ", 0, "needs a reason"},
		{"missing check and reason", "// lint:ignore", 0, "needs a check name and a reason"},
		{"unknown check", "// lint:ignore detrnge sorted below", 1, "unknown check detrnge"},
		{"unknown verb", "// lint:frobnicate", 0, "unknown directive lint:frobnicate"},
		{"not a directive", "// plain comment mentioning lint elsewhere", 0, ""},
		{"block comments cannot carry directives", "/* lint:ignore detrange reason */", 0, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := "package p\n\n" + tt.comment + "\nvar x int\n"
			d := parseDirectivesFromSrc(t, src)
			if got := len(d.ignores); got != tt.wantIgnores {
				t.Errorf("ignores = %d, want %d", got, tt.wantIgnores)
			}
			bad := d.malformed(known)
			if tt.wantProblem == "" {
				if len(bad) != 0 {
					t.Errorf("unexpected malformed directive: %s", bad[0].problem)
				}
				return
			}
			if len(bad) != 1 {
				t.Fatalf("malformed = %d findings, want 1 matching %q", len(bad), tt.wantProblem)
			}
			if !strings.Contains(bad[0].problem, tt.wantProblem) {
				t.Errorf("problem = %q, want it to contain %q", bad[0].problem, tt.wantProblem)
			}
		})
	}
}

func TestIgnorePositionDrift(t *testing.T) {
	// The directive sits on line 4; it must suppress diagnostics on line 4
	// (same line) and line 5 (directly below), and nothing else.
	src := `package p

var a int
// lint:ignore detrange reviewed reason
var b int
var c int
`
	d := parseDirectivesFromSrc(t, src)
	if len(d.ignores) != 1 {
		t.Fatalf("ignores = %d, want 1", len(d.ignores))
	}
	at := func(line int) token.Position {
		return token.Position{Filename: "fixture.go", Line: line, Column: 1}
	}
	for line, want := range map[int]bool{3: false, 4: true, 5: true, 6: false} {
		if got := d.suppressed("detrange", at(line)); got != want {
			t.Errorf("suppressed at line %d = %v, want %v", line, got, want)
		}
	}
	// Check-name and file mismatches never suppress.
	if d.suppressed("virtclock", at(5)) {
		t.Error("suppressed a different check")
	}
	other := token.Position{Filename: "other.go", Line: 5, Column: 1}
	if d.suppressed("detrange", other) {
		t.Error("suppressed a diagnostic in a different file")
	}
}

func TestDeterministicDirective(t *testing.T) {
	tagged := parseDirectivesFromSrc(t, "// Package p.\n//\n// lint:deterministic\npackage p\n")
	if !tagged.deterministic {
		t.Error("lint:deterministic in the package doc was not recognized")
	}
	plain := parseDirectivesFromSrc(t, "// Package p.\npackage p\n")
	if plain.deterministic {
		t.Error("untagged package reported deterministic")
	}
}

// TestDirectiveFixture runs the end-to-end golden test: malformed and
// drifted directives fail to suppress and report themselves.
func TestDirectiveFixture(t *testing.T) {
	runTestdata(t, []*Analyzer{VirtClock}, "directive")
}
