package lint

import "testing"

func TestVirtClock(t *testing.T) {
	runTestdata(t, []*Analyzer{VirtClock}, "virtclock")
}
