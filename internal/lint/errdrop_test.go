package lint

import "testing"

func TestErrDropGolden(t *testing.T) {
	runTestdata(t, []*Analyzer{ErrDrop}, "errdrop")
}
