package lint

import "testing"

func TestLockOrderGolden(t *testing.T) {
	runTestdata(t, []*Analyzer{LockOrder}, "lockorder")
}
