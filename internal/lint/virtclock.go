package lint

import (
	"go/ast"
	"go/types"
)

// VirtClock flags wall-clock reads and global-randomness draws in
// deterministic packages. Code running inside the simulation engine must
// take time from sim.Engine.Now and randomness from a seeded sim.RNG
// stream; time.Now or the process-global math/rand source make a run a
// function of the host machine instead of the seed.
var VirtClock = &Analyzer{
	Name:              "virtclock",
	Doc:               "flags wall-clock and global math/rand use in packages tagged lint:deterministic",
	DeterministicOnly: true,
	Run:               runVirtClock,
}

// wallClockFuncs are the package time functions that read or wait on the
// host clock. Duration arithmetic and formatting stay legal — the
// simulator uses time.Duration for virtual intervals throughout.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the package-level math/rand (and math/rand/v2)
// functions backed by the shared global source. Constructing a local
// generator with rand.New(rand.NewSource(seed)) is not flagged — seeded
// local state is exactly what the contract asks for (prefer sim.RNG).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runVirtClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions qualify: methods on local
			// timers or generators are someone else's business.
			if _, isSig := fn.Type().(*types.Signature); !isSig || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in a deterministic package; use the sim.Engine clock (Now/At/After)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the process-global random source; use a seeded sim.RNG stream",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
