package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// miclint understands four comment directives, written `// lint:...` (the
// space after `//` is optional, matching both gofmt'd comments and the
// staticcheck-style `//lint:` form):
//
//	// lint:deterministic
//	// lint:ignore <check> <reason>
//	// lint:secret [name ...]
//	// lint:declassify <check> <reason>
//
// `lint:deterministic` tags a package as part of the determinism contract;
// it may appear in any file of the package, conventionally in the package
// doc comment. `lint:ignore` suppresses diagnostics of the named check that
// are positioned on the directive's own line, or — when the directive
// stands alone on its line — on the line immediately below it. A reason is
// mandatory: suppressions are reviewed decisions, not mute buttons.
//
// `lint:secret` marks struct fields and function parameters as carrying
// real endpoint addresses — the sources of the addrleak taint analysis.
// Bare, it marks the single declaration on its line (or the line below);
// with names, it marks those identifiers of the anchored declaration, which
// is how individual parameters of a one-line function signature are marked.
//
// `lint:declassify` is the anonymity contract's counterpart of
// `lint:ignore`: it marks a *sanctioned* exposure boundary (the mimic
// rewrite install path, onion layer encryption) where a secret value may
// legitimately cross into a sink. Mechanically it suppresses like an
// ignore — same line or the line below, mandatory reason, typo'd check
// names reported — but it is parsed and listed separately so sanctioned
// boundaries stay enumerable and reviewable as a set.

// ignoreDirective is one parsed `lint:ignore` or `lint:declassify`.
type ignoreDirective struct {
	pos    token.Pos
	file   string
	line   int
	check  string
	reason string
}

// secretDirective is one parsed `lint:secret`. It anchors to the
// declaration on its own line or the line below; names, when present,
// select identifiers of that declaration.
type secretDirective struct {
	pos   token.Pos
	file  string
	line  int
	names []string
}

// badDirective is a directive that failed to parse.
type badDirective struct {
	pos     token.Pos
	problem string
}

// directives is the directive set of one package.
type directives struct {
	deterministic bool
	ignores       []ignoreDirective
	declassifies  []ignoreDirective
	secrets       []secretDirective
	bad           []badDirective
}

// parseDirectives scans every comment of every file for lint directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(fset, c)
			}
		}
	}
	return d
}

func (d *directives) parseComment(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, "//") {
		return // /* */ comments cannot carry directives
	}
	body := strings.TrimPrefix(strings.TrimPrefix(text, "//"), " ")
	if !strings.HasPrefix(body, "lint:") {
		return
	}
	rest := strings.TrimPrefix(body, "lint:")
	verb, args, _ := strings.Cut(rest, " ")
	switch verb {
	case "deterministic":
		d.deterministic = true
	case "ignore", "declassify":
		check, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
		pos := fset.Position(c.Pos())
		switch {
		case check == "":
			d.bad = append(d.bad, badDirective{c.Pos(), "lint:" + verb + " needs a check name and a reason"})
		case strings.TrimSpace(reason) == "":
			d.bad = append(d.bad, badDirective{c.Pos(), "lint:" + verb + " " + check + " needs a reason"})
		default:
			dir := ignoreDirective{
				pos:    c.Pos(),
				file:   pos.Filename,
				line:   pos.Line,
				check:  check,
				reason: strings.TrimSpace(reason),
			}
			if verb == "ignore" {
				d.ignores = append(d.ignores, dir)
			} else {
				d.declassifies = append(d.declassifies, dir)
			}
		}
	case "secret":
		pos := fset.Position(c.Pos())
		s := secretDirective{pos: c.Pos(), file: pos.Filename, line: pos.Line}
		ok := true
		for _, name := range strings.Fields(args) {
			if !isIdent(name) {
				d.bad = append(d.bad, badDirective{c.Pos(), "lint:secret name " + name + " is not an identifier"})
				ok = false
				break
			}
			s.names = append(s.names, name)
		}
		if ok {
			d.secrets = append(d.secrets, s)
		}
	default:
		d.bad = append(d.bad, badDirective{c.Pos(), "unknown directive lint:" + verb})
	}
}

// isIdent reports whether s looks like a Go identifier.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// suppressed reports whether a diagnostic of check at pos is covered by an
// ignore OR declassify directive: one on the same line, or one on the line
// directly above (the directive-on-its-own-line style). A directive
// anywhere else — e.g. drifted away from the code it once annotated — does
// not suppress.
func (d *directives) suppressed(check string, pos token.Position) bool {
	return covers(d.ignores, check, pos) || covers(d.declassifies, check, pos)
}

func covers(dirs []ignoreDirective, check string, pos token.Position) bool {
	for _, ig := range dirs {
		if ig.check != check || ig.file != pos.Filename {
			continue
		}
		if ig.line == pos.Line || ig.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// malformed returns parse failures plus ignores/declassifies naming a check
// that does not exist — a typo'd check name would otherwise suppress
// nothing, silently.
func (d *directives) malformed(known map[string]bool) []badDirective {
	out := append([]badDirective(nil), d.bad...)
	for _, ig := range d.ignores {
		if !known[ig.check] {
			out = append(out, badDirective{ig.pos, "lint:ignore names unknown check " + ig.check})
		}
	}
	for _, dc := range d.declassifies {
		if !known[dc.check] {
			out = append(out, badDirective{dc.pos, "lint:declassify names unknown check " + dc.check})
		}
	}
	return out
}
