package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// miclint understands two comment directives, written `// lint:...` (the
// space after `//` is optional, matching both gofmt'd comments and the
// staticcheck-style `//lint:` form):
//
//	// lint:deterministic
//	// lint:ignore <check> <reason>
//
// `lint:deterministic` tags a package as part of the determinism contract;
// it may appear in any file of the package, conventionally in the package
// doc comment. `lint:ignore` suppresses diagnostics of the named check that
// are positioned on the directive's own line, or — when the directive
// stands alone on its line — on the line immediately below it. A reason is
// mandatory: suppressions are reviewed decisions, not mute buttons.

// ignoreDirective is one parsed `lint:ignore`.
type ignoreDirective struct {
	pos    token.Pos
	file   string
	line   int
	check  string
	reason string
}

// badDirective is a directive that failed to parse.
type badDirective struct {
	pos     token.Pos
	problem string
}

// directives is the directive set of one package.
type directives struct {
	deterministic bool
	ignores       []ignoreDirective
	bad           []badDirective
}

// parseDirectives scans every comment of every file for lint directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(fset, c)
			}
		}
	}
	return d
}

func (d *directives) parseComment(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, "//") {
		return // /* */ comments cannot carry directives
	}
	body := strings.TrimPrefix(strings.TrimPrefix(text, "//"), " ")
	if !strings.HasPrefix(body, "lint:") {
		return
	}
	rest := strings.TrimPrefix(body, "lint:")
	verb, args, _ := strings.Cut(rest, " ")
	switch verb {
	case "deterministic":
		d.deterministic = true
	case "ignore":
		check, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
		pos := fset.Position(c.Pos())
		switch {
		case check == "":
			d.bad = append(d.bad, badDirective{c.Pos(), "lint:ignore needs a check name and a reason"})
		case strings.TrimSpace(reason) == "":
			d.bad = append(d.bad, badDirective{c.Pos(), "lint:ignore " + check + " needs a reason"})
		default:
			d.ignores = append(d.ignores, ignoreDirective{
				pos:    c.Pos(),
				file:   pos.Filename,
				line:   pos.Line,
				check:  check,
				reason: strings.TrimSpace(reason),
			})
		}
	default:
		d.bad = append(d.bad, badDirective{c.Pos(), "unknown directive lint:" + verb})
	}
}

// suppressed reports whether a diagnostic of check at pos is covered by an
// ignore directive: one on the same line, or one on the line directly
// above (the directive-on-its-own-line style). A directive anywhere else —
// e.g. drifted away from the code it once annotated — does not suppress.
func (d *directives) suppressed(check string, pos token.Position) bool {
	for _, ig := range d.ignores {
		if ig.check != check || ig.file != pos.Filename {
			continue
		}
		if ig.line == pos.Line || ig.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// malformed returns parse failures plus ignores naming a check that does
// not exist — a typo'd check name would otherwise suppress nothing,
// silently.
func (d *directives) malformed(known map[string]bool) []badDirective {
	out := append([]badDirective(nil), d.bad...)
	for _, ig := range d.ignores {
		if !known[ig.check] {
			out = append(out, badDirective{ig.pos, "lint:ignore names unknown check " + ig.check})
		}
	}
	return out
}
