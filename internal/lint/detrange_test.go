package lint

import "testing"

func TestDetRange(t *testing.T) {
	runTestdata(t, []*Analyzer{DetRange}, "detrange")
}

// TestDetRangeSkipsUntaggedPackages: the same analyzer applied to a fixture
// without the lint:deterministic directive must stay silent.
func TestDetRangeSkipsUntaggedPackages(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/handlerblock")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]*Analyzer{DetRange}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("detrange fired on an untagged package:\n%s", findingSummary(findings))
	}
}
