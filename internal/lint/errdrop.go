package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error results on control-plane paths. The MC's
// rule-budget intent accounting (admission.go) and the reliable southbound
// channel both report failure through returned errors; a FlowMod or
// CloseChannel error dropped with `_ =` or a bare call silently diverges
// the MC's intent ledger from what the switches actually hold — the exact
// drift the PR 5 reconciler exists to repair.
//
// Scope is deliberate: only calls whose callee is *defined* in a
// control-plane package (internal/mic, internal/ctrlplane,
// internal/flowtable, internal/transport) are checked, so test helpers and
// I/O-writer plumbing elsewhere stay out of scope. Interface methods
// attribute to the interface's defining package, so a drop through
// mic.ControlPlane counts. Two discard shapes are flagged:
//
//   - a bare call statement whose callee returns an error,
//   - an assignment binding an error result to the blank identifier.
//
// Deliberate discards (legacy wrappers, close-on-best-effort paths where
// the error is provably nil or irrelevant) carry
// `// lint:ignore errdrop <reason>`.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error results from control-plane (mic/ctrlplane/flowtable/transport) calls",
	Run:  runErrDrop,
}

// ctrlPlanePkgs are the packages whose returned errors carry control-plane
// state-divergence information.
var ctrlPlanePkgs = map[string]bool{
	"mic/internal/mic":       true,
	"mic/internal/ctrlplane": true,
	"mic/internal/flowtable": true,
	"mic/internal/transport": true,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ExprStmt:
				if call, ok := nn.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call)
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, nn)
			}
			return true
		})
	}
	return nil
}

// checkBareCall flags `f()` statements whose control-plane callee returns
// an error nobody looks at.
func checkBareCall(pass *Pass, call *ast.CallExpr) {
	fn, sig := ctrlPlaneCallee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			pass.Reportf(call.Pos(), "error result of %s.%s discarded by bare call", fn.Pkg().Name(), fn.Name())
			return
		}
	}
}

// checkBlankAssign flags `_ = f()` / `v, _ := f()` where the blank slot is
// an error from a control-plane callee.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return // v1, _ = a, b assigns values, not call results
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, sig := ctrlPlaneCallee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	results := sig.Results()
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		// Single-result call assigned to one LHS, or tuple position i.
		var rt types.Type
		switch {
		case len(as.Lhs) == 1 && results.Len() >= 1:
			rt = results.At(results.Len() - 1).Type()
		case i < results.Len():
			rt = results.At(i).Type()
		default:
			continue
		}
		if isErrorType(rt) {
			pass.Reportf(as.Pos(), "error result of %s.%s assigned to blank identifier", fn.Pkg().Name(), fn.Name())
			return
		}
	}
}

// ctrlPlaneCallee resolves call to its static callee if that callee is
// defined in a control-plane package.
func ctrlPlaneCallee(info *types.Info, call *ast.CallExpr) (*types.Func, *types.Signature) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !ctrlPlanePkgs[fn.Pkg().Path()] {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	return fn, sig
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
