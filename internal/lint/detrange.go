package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange flags `range` statements over maps in deterministic packages.
// Go randomizes map iteration order per run, so any map range whose body is
// order-sensitive (emits output, appends to a slice, takes the "first"
// match, breaks ties) silently destroys bit-reproducibility.
//
// A body is exempted when it is provably order-insensitive, meaning every
// statement is one of: a commutative accumulation (x++, x--, sum += v,
// prod *= v, bits |= v, and the other symmetric compound assignments), a
// write keyed by the range key (dst[k] = v — each iteration touches a
// distinct key), delete(m, k), continue, a declaration of or plain
// assignment to a variable local to the body, or an if/block composed of
// the same. Anything else — append, return, break, calls for effect,
// assignment to outer state — is flagged. The classifier inspects
// statement shapes only; it does not try to prove called functions pure.
var DetRange = &Analyzer{
	Name:              "detrange",
	Doc:               "flags order-sensitive iteration over maps in packages tagged lint:deterministic",
	DeterministicOnly: true,
	Run:               runDetRange,
}

func runDetRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has an order-sensitive body; map order is randomized per run — iterate sorted keys instead",
				typeLabel(tv.Type))
			return true
		})
	}
	return nil
}

func typeLabel(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// orderInsensitive reports whether every statement of the range body is a
// commutative accumulation or otherwise independent of iteration order.
func orderInsensitive(pass *Pass, rs *ast.RangeStmt) bool {
	c := &bodyClassifier{pass: pass, locals: map[types.Object]bool{}}
	if key, ok := rs.Key.(*ast.Ident); ok && key.Name != "_" {
		c.key = pass.TypesInfo.Defs[key]
	}
	if val, ok := rs.Value.(*ast.Ident); ok && val.Name != "_" {
		c.locals[pass.TypesInfo.Defs[val]] = true
	}
	for _, stmt := range rs.Body.List {
		if !c.allowed(stmt) {
			return false
		}
	}
	return true
}

type bodyClassifier struct {
	pass   *Pass
	key    types.Object          // the range key variable, if named
	locals map[types.Object]bool // variables declared inside the body
}

func (c *bodyClassifier) allowed(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return c.allowedAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			c.noteDeclLocals(gd)
			return true
		}
		return false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		return ok && fn.Name == "delete" && c.pass.TypesInfo.Uses[fn] == types.Universe.Lookup("delete")
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if s.Init != nil && !c.allowed(s.Init) {
			return false
		}
		if !c.allowed(s.Body) {
			return false
		}
		return s.Else == nil || c.allowed(s.Else)
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if !c.allowed(sub) {
				return false
			}
		}
		return true
	}
	return false
}

func (c *bodyClassifier) allowedAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				c.locals[c.pass.TypesInfo.Defs[id]] = true
			}
		}
		return true
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if !c.allowedTarget(lhs) {
				return false
			}
		}
		return true
	}
	return false
}

// allowedTarget accepts plain-assignment targets that cannot make the loop
// order-sensitive: body-local variables, and container elements indexed by
// the range key (each iteration writes a distinct slot).
func (c *bodyClassifier) allowedTarget(lhs ast.Expr) bool {
	switch t := lhs.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return true
		}
		return c.locals[c.pass.TypesInfo.Uses[t]]
	case *ast.IndexExpr:
		idx, ok := t.Index.(*ast.Ident)
		return ok && c.key != nil && c.pass.TypesInfo.Uses[idx] == c.key
	}
	return false
}

func (c *bodyClassifier) noteDeclLocals(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok {
			for _, name := range vs.Names {
				c.locals[c.pass.TypesInfo.Defs[name]] = true
			}
		}
	}
}
