package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AddrLeak is the anonymity contract's taint analysis. MIC's security
// argument (PAPER.md Sec III, Sec V) is positional: real endpoint addresses
// may appear only at sanctioned points — the first/last path segment on the
// wire, the MC's journal, the mimic-rewrite rules the MC installs, and
// inside onion-encrypted payloads. Everywhere else a real address in an
// error string, telemetry counter, trace line or packet header is a leak an
// adversary (or merely a curious client) can read.
//
// Sources are declared in the code under analysis with `// lint:secret` on
// struct fields and function parameters (the MC's hidden-service map, the
// per-channel real initiator/responder endpoints). Taint propagates through
// assignments, composite literals, struct-field reads, conversions and
// statically-resolvable same-package calls (bounded depth, memoized — the
// same call-graph discipline handlerblock uses; calls that leave the
// package conservatively taint their results when any argument is tainted).
//
// Sinks, reported when a tainted value reaches them:
//
//   - fmt-family formatting calls (Errorf/Sprintf/Fprintf/...): their
//     output becomes error strings, telemetry labels and journal-adjacent
//     report text;
//   - calls into internal/metrics and internal/trace: emission surfaces
//     replicated to standbys or rendered into reports;
//   - packet-header writes: packet.Packet SetSrcIP/SetDstIP calls, direct
//     assignments to its address fields, and conversions to the
//     flowtable rewrite-action types (SetIPSrc/SetIPDst/SetEthSrc/
//     SetEthDst).
//
// Sanctioned boundaries carry `// lint:declassify addrleak <reason>` — the
// reviewable, mandatory-reason counterpart of lint:ignore. A lint:secret
// directive that anchors to no field or parameter is itself reported, so a
// directive that drifts away from its declaration cannot silently stop
// marking.
var AddrLeak = &Analyzer{
	Name: "addrleak",
	Doc:  "taints lint:secret real-address values and flags flows into format strings, telemetry, traces and packet headers",
	Run:  runAddrLeak,
}

// alMaxDepth bounds the interprocedural walk, matching handlerblock.
const alMaxDepth = 4

// fmtSinks are the fmt functions whose output becomes user- or
// operator-visible strings.
var fmtSinks = map[string]bool{
	"fmt.Errorf": true, "fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Fprintf": true, "fmt.Fprint": true, "fmt.Fprintln": true,
	"fmt.Printf": true, "fmt.Print": true, "fmt.Println": true,
	"fmt.Appendf": true, "fmt.Append": true, "fmt.Appendln": true,
}

// emissionPkgs are packages whose call surface is an exposure sink: values
// handed to them land in telemetry counters, rendered tables or packet
// captures.
var emissionPkgs = map[string]bool{
	"mic/internal/metrics": true,
	"mic/internal/trace":   true,
}

// headerWriteMethods are packet-header mutators; headerRewriteTypes are the
// flow-table action types a conversion into which installs an address on
// the data path.
var headerWriteMethods = map[string]bool{
	"(*mic/internal/packet.Packet).SetSrcIP": true,
	"(*mic/internal/packet.Packet).SetDstIP": true,
}

var headerRewriteTypes = map[string]bool{
	"mic/internal/flowtable.SetIPSrc":  true,
	"mic/internal/flowtable.SetIPDst":  true,
	"mic/internal/flowtable.SetEthSrc": true,
	"mic/internal/flowtable.SetEthDst": true,
}

// headerFieldOwner/headerFields match direct assignments to packet address
// fields (p.SrcIP = x).
const headerFieldOwner = "mic/internal/packet.Packet"

var headerFields = map[string]bool{"SrcIP": true, "DstIP": true, "SrcMAC": true, "DstMAC": true}

func runAddrLeak(pass *Pass) error {
	w := &alWalker{
		pass:      pass,
		secret:    map[types.Object]string{},
		decls:     map[types.Object]*ast.FuncDecl{},
		retMemo:   map[alKey]string{},
		active:    map[alKey]bool{},
		sinkMemo:  map[alKey]bool{},
		reported:  map[token.Pos]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					w.decls[obj] = fd
				}
			}
		}
	}
	w.resolveSecrets()
	if len(w.secret) == 0 {
		return nil // no declared sources, nothing can be tainted
	}
	// Every declared function is a root: directive-marked parameters arrive
	// tainted, and secret struct fields taint any body that reads them.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				w.walkFunc(fd, nil, 0)
			}
		}
	}
	return nil
}

// alKey memoizes per-function analysis under a given tainted-parameter set.
type alKey struct {
	fn   types.Object
	mask uint64
}

type alWalker struct {
	pass     *Pass
	secret   map[types.Object]string // object -> origin description
	decls    map[types.Object]*ast.FuncDecl
	retMemo  map[alKey]string // "" = returns clean
	active   map[alKey]bool   // recursion guard for summaries
	sinkMemo map[alKey]bool   // bodies already scanned under this taint
	reported map[token.Pos]bool
}

// resolveSecrets anchors each lint:secret directive to struct fields and
// function parameters/results declared on the directive's line or the line
// below, reporting directives that mark nothing — drift protection.
func (w *alWalker) resolveSecrets() {
	type candidate struct {
		obj  types.Object
		name string
	}
	// Collect every markable declaration ident by (file, line).
	byLine := map[string][]candidate{}
	lineKey := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	addIdent := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := w.pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		p := w.pass.Fset.Position(id.Pos())
		k := lineKey(p.Filename, p.Line)
		byLine[k] = append(byLine[k], candidate{obj, id.Name})
	}
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				addIdent(id)
			}
		}
	}
	for _, f := range w.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.StructType:
				addFieldList(nn.Fields)
			case *ast.FuncDecl:
				addFieldList(nn.Type.Params)
				addFieldList(nn.Type.Results)
			}
			return true
		})
	}
	for _, s := range w.pass.dirs.secrets {
		var cands []candidate
		for _, line := range [2]int{s.line, s.line + 1} {
			cands = append(cands, byLine[lineKey(s.file, line)]...)
		}
		switch {
		case len(cands) == 0:
			w.pass.Reportf(s.pos, "lint:secret anchors to no struct field or function parameter (drifted directive?)")
		case len(s.names) > 0:
			want := map[string]bool{}
			for _, n := range s.names {
				want[n] = true
			}
			for _, c := range cands {
				if want[c.name] {
					w.markSecret(c.obj)
					delete(want, c.name)
				}
			}
			for n := range want {
				// lint:ignore detrange diagnostics are position-sorted by the framework afterwards
				w.pass.Reportf(s.pos, "lint:secret names %s, which is not declared on the anchored line", n)
			}
		case len(cands) == 1:
			w.markSecret(cands[0].obj)
		default:
			w.pass.Reportf(s.pos, "lint:secret anchors to %d declarations; name the ones to mark", len(cands))
		}
	}
}

func (w *alWalker) markSecret(obj types.Object) {
	origin := obj.Name()
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		origin = "field " + origin
	}
	w.secret[obj] = origin
}

// walkFunc analyzes one function body: computes the local taint environment
// (directive-marked parameters plus extra taint injected by a caller),
// reports sinks, and follows same-package calls that pass taint onward.
func (w *alWalker) walkFunc(fd *ast.FuncDecl, extra map[types.Object]string, depth int) {
	if fd.Body == nil || depth > alMaxDepth {
		return
	}
	obj := w.pass.TypesInfo.Defs[fd.Name]
	key := alKey{obj, w.paramMask(fd, extra)}
	if obj != nil {
		if w.sinkMemo[key] {
			return
		}
		w.sinkMemo[key] = true
	}
	env := w.buildEnv(fd, extra)
	w.scanSinks(fd.Body, env, depth)
}

// paramMask encodes which parameters arrive tainted, for memoization.
func (w *alWalker) paramMask(fd *ast.FuncDecl, extra map[types.Object]string) uint64 {
	var mask uint64
	i := 0
	if fd.Type.Params == nil {
		return 0
	}
	for _, f := range fd.Type.Params.List {
		for _, id := range f.Names {
			obj := w.pass.TypesInfo.Defs[id]
			if obj != nil && extra[obj] != "" && i < 64 {
				mask |= 1 << i
			}
			i++
		}
	}
	return mask
}

// buildEnv computes the function's taint environment: a flow-insensitive
// fixpoint over assignments, declarations and range statements. Taint only
// grows — re-assigning a clean value does not launder a variable; the
// declassify directive exists for reviewed exceptions.
func (w *alWalker) buildEnv(fd *ast.FuncDecl, extra map[types.Object]string) map[types.Object]string {
	env := map[types.Object]string{}
	for obj, origin := range extra {
		env[obj] = origin
	}
	for changed, rounds := true, 0; changed && rounds < 8; rounds++ {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				changed = w.applyAssign(nn.Lhs, nn.Rhs, env) || changed
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(nn.Names))
				for i, id := range nn.Names {
					lhs[i] = id
				}
				changed = w.applyAssign(lhs, nn.Values, env) || changed
			case *ast.RangeStmt:
				if origin := w.taintOf(nn.X, env, 0); origin != "" {
					for _, e := range [2]ast.Expr{nn.Key, nn.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := w.defOrUse(id); obj != nil && env[obj] == "" {
								env[obj] = origin
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return env
}

// applyAssign taints LHS variables whose RHS carries taint. With a single
// multi-value RHS (call or type assertion), taint from it covers every LHS.
func (w *alWalker) applyAssign(lhs, rhs []ast.Expr, env map[types.Object]string) bool {
	if len(rhs) == 0 {
		return false
	}
	changed := false
	taintLHS := func(e ast.Expr, origin string) {
		if origin == "" {
			return
		}
		// Writing into a slot of a container (T[n] = ..., *p = ...) taints
		// the container variable itself.
		for {
			switch lhs := e.(type) {
			case *ast.IndexExpr:
				e = lhs.X
				continue
			case *ast.StarExpr:
				e = lhs.X
				continue
			case *ast.ParenExpr:
				e = lhs.X
				continue
			}
			break
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := w.defOrUse(id); obj != nil && env[obj] == "" && !isErrObj(obj) {
				env[obj] = origin
				changed = true
			}
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			taintLHS(lhs[i], w.taintOf(rhs[i], env, 0))
		}
		return changed
	}
	origin := w.taintOf(rhs[0], env, 0)
	for _, l := range lhs {
		taintLHS(l, origin)
	}
	return changed
}

func (w *alWalker) defOrUse(id *ast.Ident) types.Object {
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Uses[id]
}

// taintOf reports the origin of the first secret contributor of e, or "".
func (w *alWalker) taintOf(e ast.Expr, env map[types.Object]string, depth int) string {
	// error values never carry address taint: scrubbing happens at the
	// fmt.Errorf construction site (the sink this analyzer checks), so a
	// clean error stays clean however far it is wrapped and re-returned.
	if tv, ok := w.pass.TypesInfo.Types[e]; ok && isErrorType(tv.Type) {
		return ""
	}
	switch nn := e.(type) {
	case *ast.Ident:
		if obj := w.defOrUse(nn); obj != nil {
			if o := env[obj]; o != "" {
				return o
			}
			return w.secret[obj]
		}
	case *ast.SelectorExpr:
		if obj := w.pass.TypesInfo.Uses[nn.Sel]; obj != nil {
			if o := w.secret[obj]; o != "" {
				return o
			}
		}
		return w.taintOf(nn.X, env, depth)
	case *ast.CallExpr:
		return w.callTaint(nn, env, depth)
	case *ast.CompositeLit:
		for _, el := range nn.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				// A secret value stored into a secret-marked field is covered
				// by field sensitivity: reading it back through the field is
				// tainted, but the enclosing struct value itself stays clean
				// (channelState{initiator: x} must not taint every channel
				// bookkeeping slice hanging off the state).
				if key, ok := kv.Key.(*ast.Ident); ok {
					if obj := w.defOrUse(key); obj != nil && w.secret[obj] != "" {
						continue
					}
				}
				el = kv.Value
			}
			if o := w.taintOf(el, env, depth); o != "" {
				return o
			}
		}
	case *ast.BinaryExpr:
		if o := w.taintOf(nn.X, env, depth); o != "" {
			return o
		}
		return w.taintOf(nn.Y, env, depth)
	case *ast.UnaryExpr:
		return w.taintOf(nn.X, env, depth)
	case *ast.StarExpr:
		return w.taintOf(nn.X, env, depth)
	case *ast.ParenExpr:
		return w.taintOf(nn.X, env, depth)
	case *ast.IndexExpr:
		return w.taintOf(nn.X, env, depth)
	case *ast.SliceExpr:
		return w.taintOf(nn.X, env, depth)
	case *ast.TypeAssertExpr:
		return w.taintOf(nn.X, env, depth)
	}
	return ""
}

// callTaint decides whether a call expression yields a tainted value.
func (w *alWalker) callTaint(call *ast.CallExpr, env map[types.Object]string, depth int) string {
	// Conversions carry the operand's taint.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return w.taintOf(call.Args[0], env, depth)
		}
		return ""
	}
	fn := w.callee(call)
	if fn != nil {
		switch fn.FullName() {
		case "len", "cap":
			return "" // counts of secret containers are not secret
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := w.defOrUse(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "delete", "close", "panic":
				return ""
			}
		}
	}
	argTaint := func() string {
		for _, a := range call.Args {
			if o := w.taintOf(a, env, depth); o != "" {
				return o
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return w.taintOf(sel.X, env, depth)
		}
		return ""
	}
	if fn == nil {
		return argTaint() // dynamic call: conservative pass-through
	}
	fd := w.decls[fn]
	if fd == nil || fd.Body == nil {
		return argTaint() // out-of-package or bodyless: pass-through
	}
	// Same-package static call: summarize whether its returns carry taint
	// given the argument taint we pass in.
	extra := w.bindArgs(fd, call, env, depth)
	key := alKey{fn, w.paramMask(fd, extra)}
	if w.active[key] || depth >= alMaxDepth {
		return argTaint() // recursion/depth cap: conservative pass-through
	}
	if o, ok := w.retMemo[key]; ok {
		return o
	}
	w.active[key] = true
	calleeEnv := w.buildEnv(fd, extra)
	origin := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if origin != "" {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if o := w.taintOf(r, calleeEnv, depth+1); o != "" {
					origin = o
					break
				}
			}
		}
		return true
	})
	delete(w.active, key)
	w.retMemo[key] = origin
	return origin
}

// bindArgs maps tainted call arguments onto the callee's parameters.
func (w *alWalker) bindArgs(fd *ast.FuncDecl, call *ast.CallExpr, env map[types.Object]string, depth int) map[types.Object]string {
	extra := map[types.Object]string{}
	if fd.Type.Params == nil {
		return extra
	}
	var params []types.Object
	for _, f := range fd.Type.Params.List {
		for _, id := range f.Names {
			params = append(params, w.pass.TypesInfo.Defs[id])
		}
	}
	for i, a := range call.Args {
		if i >= len(params) || params[i] == nil {
			continue
		}
		if o := w.taintOf(a, env, depth); o != "" {
			extra[params[i]] = o
		}
	}
	// A tainted method receiver taints the callee's receiver object.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && fd.Recv != nil && len(fd.Recv.List) > 0 {
		if o := w.taintOf(sel.X, env, depth); o != "" {
			for _, id := range fd.Recv.List[0].Names {
				if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
					extra[obj] = o
				}
			}
		}
	}
	return extra
}

// scanSinks reports tainted values reaching exposure surfaces in body, and
// walks taint into same-package callees.
func (w *alWalker) scanSinks(body *ast.BlockStmt, env map[types.Object]string, depth int) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.AssignStmt:
			w.checkHeaderFieldAssign(nn, env, depth)
		case *ast.CallExpr:
			w.checkCallSinks(nn, env, depth)
		}
		return true
	})
}

// checkHeaderFieldAssign flags p.SrcIP = tainted and friends.
func (w *alWalker) checkHeaderFieldAssign(as *ast.AssignStmt, env map[types.Object]string, depth int) {
	for i, l := range as.Lhs {
		sel, ok := l.(*ast.SelectorExpr)
		if !ok || i >= len(as.Rhs) {
			continue
		}
		fobj, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !fobj.IsField() || !headerFields[fobj.Name()] {
			continue
		}
		if owner := fieldOwner(w.pass.TypesInfo, sel); owner != headerFieldOwner {
			continue
		}
		if o := w.taintOf(as.Rhs[i], env, depth); o != "" {
			w.report(l.Pos(), "secret %s written into packet header field %s", o, fobj.Name())
		}
	}
}

// fieldOwner names the struct type a selected field belongs to.
func fieldOwner(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path() + "." + named.Obj().Name()
	}
	return ""
}

// checkCallSinks flags tainted arguments reaching fmt formatting, the
// metrics/trace emission surface, packet-header mutators and conversions to
// flow-table rewrite actions — and follows taint into same-package callees.
func (w *alWalker) checkCallSinks(call *ast.CallExpr, env map[types.Object]string, depth int) {
	// Conversion to a rewrite-action type.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if named, ok := tv.Type.(*types.Named); ok && named.Obj().Pkg() != nil {
			name := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if headerRewriteTypes[name] && len(call.Args) == 1 {
				if o := w.taintOf(call.Args[0], env, depth); o != "" {
					w.report(call.Pos(), "secret %s written into header-rewrite action %s", o, named.Obj().Name())
				}
			}
		}
		return
	}
	fn := w.callee(call)
	if fn == nil {
		return
	}
	full := fn.FullName()
	switch {
	case fmtSinks[full]:
		for _, a := range call.Args {
			if o := w.taintOf(a, env, depth); o != "" {
				w.report(call.Pos(), "secret %s reaches %s — real addresses must not land in error/report strings", o, full)
				break
			}
		}
	case headerWriteMethods[full]:
		for _, a := range call.Args {
			if o := w.taintOf(a, env, depth); o != "" {
				w.report(call.Pos(), "secret %s written into packet header via %s", o, fn.Name())
				break
			}
		}
	case fn.Pkg() != nil && emissionPkgs[fn.Pkg().Path()]:
		for _, a := range call.Args {
			if o := w.taintOf(a, env, depth); o != "" {
				w.report(call.Pos(), "secret %s reaches telemetry/trace emission %s", o, full)
				break
			}
		}
	case fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" &&
		(strings.HasPrefix(fn.Name(), "Put") || strings.HasPrefix(fn.Name(), "Append")):
		// Serializing a secret into a wire buffer is a header-write sink:
		// whatever the buffer is, its bytes leave the node.
		for _, a := range call.Args {
			if o := w.taintOf(a, env, depth); o != "" {
				w.report(call.Pos(), "secret %s serialized into a wire buffer via binary.%s", o, fn.Name())
				break
			}
		}
	}
	// Follow taint into same-package callees so sinks buried a few calls
	// deep are still attributed.
	if fd := w.decls[fn]; fd != nil {
		extra := w.bindArgs(fd, call, env, depth)
		if len(extra) > 0 || w.readsSecrets(fd) {
			w.walkFunc(fd, extra, depth+1)
		}
	}
}

// readsSecrets cheaply decides whether a function body can originate taint
// on its own (reads a secret field or marked parameter), so clean call
// chains are not walked.
func (w *alWalker) readsSecrets(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.defOrUse(id); obj != nil && w.secret[obj] != "" {
				found = true
			}
		}
		return true
	})
	return found
}

// callee resolves a call to the *types.Func it statically invokes.
func (w *alWalker) callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = w.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isErrObj reports whether obj holds an error value.
func isErrObj(obj types.Object) bool {
	return isErrorType(obj.Type())
}

func (w *alWalker) report(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	// Origins read like "field hidden"; strip duplicate spacing defensively.
	w.pass.Reportf(pos, "%s", strings.TrimSpace(fmt.Sprintf(format, args...)))
}
