package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts golden expectations from fixture comments, analysistest
// style: a comment containing the word want followed by a backquoted
// regexp expects one diagnostic on that line whose message matches it.
var wantRe = regexp.MustCompile("want `([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runTestdata loads ./testdata/src/<name>, runs the analyzers over it, and
// compares the surviving findings against the fixture's want comments —
// which exercises suppression too: a suppressed diagnostic has no want
// comment and must not surface.
func runTestdata(t *testing.T, analyzers []*Analyzer, name string) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}

	findings, err := Run(analyzers, pkgs)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", name, err)
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// findingSummary is a debugging aid for failed golden runs.
func findingSummary(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
