// Package flowtable implements the OpenFlow-style switch pipeline MIC
// relies on: priority-ordered match entries over L2-L4 headers plus the
// outermost MPLS label, set-field / push / pop / output actions, and ALL
// group tables for partial multicast. The paper's deployability goal (Sec
// III-C) is that MIC uses only this standard rule vocabulary — no custom
// switch logic — so this package deliberately exposes nothing beyond it.
//
// This package is part of the determinism contract (DESIGN.md).
//
// lint:deterministic
package flowtable

import (
	"fmt"
	"strings"

	"mic/internal/addr"
	"mic/internal/packet"
)

// FieldMask selects which fields a Match constrains.
type FieldMask uint16

// Field mask bits, one per matchable header field.
const (
	MatchInPort FieldMask = 1 << iota
	MatchEthSrc
	MatchEthDst
	MatchIPSrc
	MatchIPDst
	MatchProto
	MatchTPSrc
	MatchTPDst
	MatchMPLS   // outermost label equals the given value (requires a label)
	MatchNoMPLS // packet carries no MPLS header
)

// Match is a header predicate. Zero value matches every packet.
type Match struct {
	Mask   FieldMask
	InPort int
	EthSrc addr.MAC
	EthDst addr.MAC
	IPSrc  addr.IP
	IPDst  addr.IP
	Proto  uint8
	TPSrc  uint16
	TPDst  uint16
	MPLS   addr.Label
}

// Covers reports whether the packet arriving on inPort satisfies m.
func (m Match) Covers(p *packet.Packet, inPort int) bool {
	if m.Mask&MatchInPort != 0 && inPort != m.InPort {
		return false
	}
	if m.Mask&MatchEthSrc != 0 && p.SrcMAC != m.EthSrc {
		return false
	}
	if m.Mask&MatchEthDst != 0 && p.DstMAC != m.EthDst {
		return false
	}
	if m.Mask&MatchIPSrc != 0 && p.SrcIP != m.IPSrc {
		return false
	}
	if m.Mask&MatchIPDst != 0 && p.DstIP != m.IPDst {
		return false
	}
	if m.Mask&MatchProto != 0 && p.Proto != m.Proto {
		return false
	}
	if m.Mask&MatchTPSrc != 0 && p.SrcPort != m.TPSrc {
		return false
	}
	if m.Mask&MatchTPDst != 0 && p.DstPort != m.TPDst {
		return false
	}
	top, has := p.TopMPLS()
	if m.Mask&MatchMPLS != 0 && (!has || top != m.MPLS) {
		return false
	}
	if m.Mask&MatchNoMPLS != 0 && has {
		return false
	}
	return true
}

// Equal reports whether two matches constrain exactly the same header
// space. Used to detect the routing collisions of Sec IV-B3: two entries
// with equal matches at equal priority are ambiguous.
func (m Match) Equal(o Match) bool {
	if m.Mask != o.Mask {
		return false
	}
	eq := true
	if m.Mask&MatchInPort != 0 {
		eq = eq && m.InPort == o.InPort
	}
	if m.Mask&MatchEthSrc != 0 {
		eq = eq && m.EthSrc == o.EthSrc
	}
	if m.Mask&MatchEthDst != 0 {
		eq = eq && m.EthDst == o.EthDst
	}
	if m.Mask&MatchIPSrc != 0 {
		eq = eq && m.IPSrc == o.IPSrc
	}
	if m.Mask&MatchIPDst != 0 {
		eq = eq && m.IPDst == o.IPDst
	}
	if m.Mask&MatchProto != 0 {
		eq = eq && m.Proto == o.Proto
	}
	if m.Mask&MatchTPSrc != 0 {
		eq = eq && m.TPSrc == o.TPSrc
	}
	if m.Mask&MatchTPDst != 0 {
		eq = eq && m.TPDst == o.TPDst
	}
	if m.Mask&MatchMPLS != 0 {
		eq = eq && m.MPLS == o.MPLS
	}
	return eq
}

// normalized returns m with every unconstrained field zeroed, so that two
// matches are Equal iff their normalized forms are ==. Normalized matches
// are the classifier's hash-bucket keys.
func (m Match) normalized() Match {
	n := Match{Mask: m.Mask}
	if m.Mask&MatchInPort != 0 {
		n.InPort = m.InPort
	}
	if m.Mask&MatchEthSrc != 0 {
		n.EthSrc = m.EthSrc
	}
	if m.Mask&MatchEthDst != 0 {
		n.EthDst = m.EthDst
	}
	if m.Mask&MatchIPSrc != 0 {
		n.IPSrc = m.IPSrc
	}
	if m.Mask&MatchIPDst != 0 {
		n.IPDst = m.IPDst
	}
	if m.Mask&MatchProto != 0 {
		n.Proto = m.Proto
	}
	if m.Mask&MatchTPSrc != 0 {
		n.TPSrc = m.TPSrc
	}
	if m.Mask&MatchTPDst != 0 {
		n.TPDst = m.TPDst
	}
	if m.Mask&MatchMPLS != 0 {
		n.MPLS = m.MPLS
	}
	return n
}

// projectKey builds the normalized match a packet on inPort would need for a
// subtable of shape mask — i.e. the bucket key whose entries all cover the
// packet. ok is false when no match of that shape can cover the packet
// (label constraints the packet cannot satisfy).
func projectKey(mask FieldMask, p *packet.Packet, inPort int) (Match, bool) {
	m := Match{Mask: mask}
	if mask&MatchInPort != 0 {
		m.InPort = inPort
	}
	if mask&MatchEthSrc != 0 {
		m.EthSrc = p.SrcMAC
	}
	if mask&MatchEthDst != 0 {
		m.EthDst = p.DstMAC
	}
	if mask&MatchIPSrc != 0 {
		m.IPSrc = p.SrcIP
	}
	if mask&MatchIPDst != 0 {
		m.IPDst = p.DstIP
	}
	if mask&MatchProto != 0 {
		m.Proto = p.Proto
	}
	if mask&MatchTPSrc != 0 {
		m.TPSrc = p.SrcPort
	}
	if mask&MatchTPDst != 0 {
		m.TPDst = p.DstPort
	}
	top, has := p.TopMPLS()
	if mask&MatchMPLS != 0 {
		if !has {
			return Match{}, false
		}
		m.MPLS = top
	}
	if mask&MatchNoMPLS != 0 && has {
		return Match{}, false
	}
	return m, true
}

// String renders the constrained fields only.
func (m Match) String() string {
	var parts []string
	add := func(mask FieldMask, s string) {
		if m.Mask&mask != 0 {
			parts = append(parts, s)
		}
	}
	add(MatchInPort, fmt.Sprintf("in:%d", m.InPort))
	add(MatchEthSrc, fmt.Sprintf("ethsrc:%v", m.EthSrc))
	add(MatchEthDst, fmt.Sprintf("ethdst:%v", m.EthDst))
	add(MatchIPSrc, fmt.Sprintf("ipsrc:%v", m.IPSrc))
	add(MatchIPDst, fmt.Sprintf("ipdst:%v", m.IPDst))
	add(MatchProto, fmt.Sprintf("proto:%d", m.Proto))
	add(MatchTPSrc, fmt.Sprintf("tpsrc:%d", m.TPSrc))
	add(MatchTPDst, fmt.Sprintf("tpdst:%d", m.TPDst))
	add(MatchMPLS, fmt.Sprintf("mpls:%v", m.MPLS))
	add(MatchNoMPLS, "nompls")
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}
