package flowtable

import (
	"fmt"

	"mic/internal/addr"
	"mic/internal/packet"
)

// Action is one step of an OpenFlow action list. Set-field and MPLS actions
// mutate the packet; Output and OutputGroup do not mutate but tell the
// switch where to forward the packet as rewritten so far.
type Action interface {
	// Apply mutates p for set-field/MPLS actions; it is a no-op for
	// Output/OutputGroup, which the switch interprets itself.
	Apply(p *packet.Packet)
	String() string
}

// SetEthSrc rewrites the source MAC.
type SetEthSrc addr.MAC

func (a SetEthSrc) Apply(p *packet.Packet) { p.SrcMAC = addr.MAC(a) }
func (a SetEthSrc) String() string         { return fmt.Sprintf("set_eth_src:%v", addr.MAC(a)) }

// SetEthDst rewrites the destination MAC.
type SetEthDst addr.MAC

func (a SetEthDst) Apply(p *packet.Packet) { p.DstMAC = addr.MAC(a) }
func (a SetEthDst) String() string         { return fmt.Sprintf("set_eth_dst:%v", addr.MAC(a)) }

// SetIPSrc rewrites the source IPv4 address.
type SetIPSrc addr.IP

func (a SetIPSrc) Apply(p *packet.Packet) { p.SetSrcIP(addr.IP(a)) }
func (a SetIPSrc) String() string         { return fmt.Sprintf("set_ip_src:%v", addr.IP(a)) }

// SetIPDst rewrites the destination IPv4 address.
type SetIPDst addr.IP

func (a SetIPDst) Apply(p *packet.Packet) { p.SetDstIP(addr.IP(a)) }
func (a SetIPDst) String() string         { return fmt.Sprintf("set_ip_dst:%v", addr.IP(a)) }

// SetTPSrc rewrites the transport source port.
type SetTPSrc uint16

func (a SetTPSrc) Apply(p *packet.Packet) { p.SrcPort = uint16(a) }
func (a SetTPSrc) String() string         { return fmt.Sprintf("set_tp_src:%d", uint16(a)) }

// SetTPDst rewrites the transport destination port.
type SetTPDst uint16

func (a SetTPDst) Apply(p *packet.Packet) { p.DstPort = uint16(a) }
func (a SetTPDst) String() string         { return fmt.Sprintf("set_tp_dst:%d", uint16(a)) }

// PushMPLS pushes a label onto the stack.
type PushMPLS addr.Label

func (a PushMPLS) Apply(p *packet.Packet) { p.PushMPLS(addr.Label(a)) }
func (a PushMPLS) String() string         { return fmt.Sprintf("push_mpls:%v", addr.Label(a)) }

// PopMPLS pops the outermost label.
type PopMPLS struct{}

func (PopMPLS) Apply(p *packet.Packet) { p.PopMPLS() }
func (PopMPLS) String() string         { return "pop_mpls" }

// SetMPLS rewrites the outermost label in place (push if absent, matching
// permissive software-switch behaviour).
type SetMPLS addr.Label

func (a SetMPLS) Apply(p *packet.Packet) { p.SetTopMPLS(addr.Label(a)) }
func (a SetMPLS) String() string         { return fmt.Sprintf("set_mpls:%v", addr.Label(a)) }

// Output forwards the packet (as rewritten so far) out a port.
type Output int

func (Output) Apply(*packet.Packet) {}
func (a Output) String() string     { return fmt.Sprintf("output:%d", int(a)) }

// GroupID names a group table entry.
type GroupID uint32

// OutputGroup hands the packet to a group (type ALL): every bucket receives
// its own clone, applies its actions, and forwards. This is the OpenFlow
// mechanism behind MIC's partial multicast.
type OutputGroup GroupID

func (OutputGroup) Apply(*packet.Packet) {}
func (a OutputGroup) String() string     { return fmt.Sprintf("group:%d", uint32(a)) }

// Bucket is one replication branch of an ALL group.
type Bucket struct {
	Actions []Action
}

// Group is an OpenFlow group-table entry of type ALL.
type Group struct {
	ID      GroupID
	Buckets []Bucket
}

// MutationCount reports how many packet-mutating actions the list contains;
// the data plane charges per-action CPU cost using it.
func MutationCount(actions []Action) int {
	n := 0
	for _, a := range actions {
		switch a.(type) {
		case Output, OutputGroup:
		default:
			n++
		}
	}
	return n
}
