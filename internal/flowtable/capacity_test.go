package flowtable

import (
	"errors"
	"testing"
	"time"

	"mic/internal/addr"
	"mic/internal/sim"
)

// --- TCAM capacity model: deny-new, LRU eviction, per-reason counters ----

func capEntry(prio int, dst addr.IP, evictable bool) *Entry {
	return &Entry{
		Priority:  prio,
		Match:     Match{Mask: MatchIPDst, IPDst: dst},
		Evictable: evictable,
	}
}

func TestCapacityDenyNewByDefault(t *testing.T) {
	tb := NewTable()
	tb.Capacity = 2
	if err := tb.TryInsert(capEntry(1, 10, true), 0); err != nil {
		t.Fatalf("insert 1: %v", err)
	}
	if err := tb.TryInsert(capEntry(2, 11, true), 0); err != nil {
		t.Fatalf("insert 2: %v", err)
	}
	err := tb.TryInsert(capEntry(3, 12, true), 0)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("insert at capacity: err = %v, want ErrTableFull", err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d after denied insert, want 2", tb.Len())
	}
	if tb.EvictedCapacity != 0 {
		t.Fatalf("EvictedCapacity = %d under deny-new, want 0", tb.EvictedCapacity)
	}
}

// TestCapacityReplaceAtCapacity: replace-in-place never counts against
// capacity — a full table must still accept an update of an existing rule
// (same match, same priority), the FlowMod-modify case.
func TestCapacityReplaceAtCapacity(t *testing.T) {
	tb := NewTable()
	tb.Capacity = 1
	old := capEntry(5, 10, false)
	if err := tb.TryInsert(old, 0); err != nil {
		t.Fatalf("insert: %v", err)
	}
	repl := capEntry(5, 10, false)
	repl.Cookie = 99
	if err := tb.TryInsert(repl, 0); err != nil {
		t.Fatalf("replace at capacity: %v", err)
	}
	if tb.Len() != 1 || tb.Entries()[0].Cookie != 99 {
		t.Fatalf("replace did not take: len=%d", tb.Len())
	}
}

func TestCapacityLRUEviction(t *testing.T) {
	tb := NewTable()
	tb.Capacity = 2
	tb.Policy = EvictLRU
	var evicted []*Entry
	var reasons []EvictReason
	tb.OnEvict = func(e *Entry, r EvictReason) { evicted = append(evicted, e); reasons = append(reasons, r) }

	a := capEntry(1, 10, true)
	b := capEntry(2, 11, true)
	tb.TryInsert(a, 0)
	tb.TryInsert(b, 1)
	// Touch a at t=5 so b (LastUsed 1) is the LRU victim.
	pa := pkt()
	pa.DstIP = 10
	tb.Lookup(pa, 0, 5)

	c := capEntry(3, 12, true)
	if err := tb.TryInsert(c, 6); err != nil {
		t.Fatalf("insert with LRU eviction: %v", err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if len(evicted) != 1 || evicted[0] != b {
		t.Fatalf("evicted %v, want the LRU entry b", evicted)
	}
	if reasons[0] != EvictCapacity {
		t.Fatalf("eviction reason = %v, want capacity", reasons[0])
	}
	if tb.EvictedCapacity != 1 {
		t.Fatalf("EvictedCapacity = %d, want 1", tb.EvictedCapacity)
	}
}

// TestCapacityLRUSparesPinnedEntries: only Evictable entries may be
// displaced — a table full of pinned (common-routing) rules denies the
// insert even under EvictLRU.
func TestCapacityLRUSparesPinnedEntries(t *testing.T) {
	tb := NewTable()
	tb.Capacity = 2
	tb.Policy = EvictLRU
	tb.TryInsert(capEntry(1, 10, false), 0)
	tb.TryInsert(capEntry(2, 11, false), 0)
	err := tb.TryInsert(capEntry(3, 12, true), 1)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("insert over pinned table: err = %v, want ErrTableFull", err)
	}
	if tb.Len() != 2 || tb.EvictedCapacity != 0 {
		t.Fatalf("pinned entries disturbed: len=%d evicted=%d", tb.Len(), tb.EvictedCapacity)
	}
}

// TestCapacityEvictionInvalidatesCache: a microflow-cache hit on an entry
// evicted at capacity must miss afterwards (generation bump), never serve
// the dead pointer.
func TestCapacityEvictionInvalidatesCache(t *testing.T) {
	tb := NewTable()
	tb.Capacity = 1
	tb.Policy = EvictLRU
	victim := &Entry{Priority: 5, Match: Match{Mask: MatchIPDst, IPDst: pkt().DstIP}, Evictable: true}
	tb.TryInsert(victim, 0)
	tb.Lookup(pkt(), 0, 1)
	if got, hit := tb.Lookup(pkt(), 0, 2); !hit || got != victim {
		t.Fatalf("warmup lookup = %v hit %v, want cached victim", got, hit)
	}

	newcomer := capEntry(1, 99, true)
	if err := tb.TryInsert(newcomer, 3); err != nil {
		t.Fatalf("evicting insert: %v", err)
	}
	got, hit := tb.Lookup(pkt(), 0, 4)
	if hit {
		t.Fatal("stale cache entry served after capacity eviction")
	}
	if got != nil {
		t.Fatalf("lookup after eviction = %+v, want table miss", got)
	}
}

// TestFailedInsertKeepsCacheWarm: a denied TryInsert mutates nothing, so it
// must not bump the cache generation — the hot path keeps its hits.
func TestFailedInsertKeepsCacheWarm(t *testing.T) {
	tb := NewTable()
	tb.Capacity = 1
	e := &Entry{Priority: 5, Match: Match{Mask: MatchIPDst, IPDst: pkt().DstIP}}
	tb.TryInsert(e, 0)
	tb.Lookup(pkt(), 0, 1)
	if _, hit := tb.Lookup(pkt(), 0, 2); !hit {
		t.Fatal("warmup did not cache")
	}
	if err := tb.TryInsert(capEntry(1, 77, true), 3); !errors.Is(err, ErrTableFull) {
		t.Fatalf("expected ErrTableFull, got %v", err)
	}
	if _, hit := tb.Lookup(pkt(), 0, 4); !hit {
		t.Fatal("failed insert invalidated the cache")
	}
}

// TestEvictReasonCounters: idle, hard and capacity evictions each increment
// their own counter and report their own reason through OnEvict; hard wins
// when an entry exceeds both timeouts.
func TestEvictReasonCounters(t *testing.T) {
	tb := NewTable()
	tb.Policy = EvictLRU
	tb.Capacity = 3
	var reasons []EvictReason
	tb.OnEvict = func(_ *Entry, r EvictReason) { reasons = append(reasons, r) }

	// Priorities order the Expire scan: idle (prio 2) is visited before
	// hard (prio 1), so OnEvict reasons arrive [idle, hard].
	idle := capEntry(2, 10, false)
	idle.IdleTimeout = time.Second
	hard := capEntry(1, 11, false)
	hard.IdleTimeout = time.Second // exceeds both; hard must win
	hard.HardTimeout = 2 * time.Second
	lru := capEntry(3, 12, true)
	tb.TryInsert(idle, 0)
	tb.TryInsert(hard, 0)
	tb.TryInsert(lru, 0)

	if ev := tb.Expire(sim.Time(3 * time.Second)); len(ev) != 2 {
		t.Fatalf("Expire evicted %d entries, want 2", len(ev))
	}
	if tb.EvictedIdle != 1 || tb.EvictedHard != 1 {
		t.Fatalf("EvictedIdle/Hard = %d/%d, want 1/1", tb.EvictedIdle, tb.EvictedHard)
	}

	// Refill to capacity, then force one capacity eviction.
	tb.TryInsert(capEntry(4, 13, true), sim.Time(4*time.Second))
	tb.TryInsert(capEntry(5, 14, true), sim.Time(4*time.Second))
	if err := tb.TryInsert(capEntry(6, 15, true), sim.Time(5*time.Second)); err != nil {
		t.Fatalf("LRU insert: %v", err)
	}
	if tb.EvictedCapacity != 1 {
		t.Fatalf("EvictedCapacity = %d, want 1", tb.EvictedCapacity)
	}
	want := []EvictReason{EvictIdle, EvictHard, EvictCapacity}
	if len(reasons) != 3 {
		t.Fatalf("OnEvict fired %d times, want 3 (%v)", len(reasons), reasons)
	}
	for i, r := range reasons {
		if r != want[i] {
			t.Fatalf("OnEvict reasons = %v, want %v", reasons, want)
		}
	}
}

// TestExpireFreesCapacity: timeout expiry opens slots that a subsequent
// TryInsert may use — the interaction that keeps deny-new tables usable as
// idle channels age out.
func TestExpireFreesCapacity(t *testing.T) {
	tb := NewTable()
	tb.Capacity = 1
	e := capEntry(1, 10, false)
	e.IdleTimeout = time.Second
	tb.TryInsert(e, 0)
	if err := tb.TryInsert(capEntry(2, 11, false), sim.Time(time.Millisecond)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("pre-expiry insert: err = %v, want ErrTableFull", err)
	}
	tb.Expire(sim.Time(2 * time.Second))
	if err := tb.TryInsert(capEntry(2, 11, false), sim.Time(2*time.Second)); err != nil {
		t.Fatalf("post-expiry insert: %v", err)
	}
	if tb.Len() != 1 || tb.EvictedIdle != 1 {
		t.Fatalf("len=%d idle=%d, want 1/1", tb.Len(), tb.EvictedIdle)
	}
}

// TestEvictReasonString pins the reason labels used in logs and telemetry.
func TestEvictReasonString(t *testing.T) {
	for r, want := range map[EvictReason]string{
		EvictIdle: "idle", EvictHard: "hard", EvictCapacity: "capacity",
	} {
		if got := r.String(); got != want {
			t.Errorf("EvictReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}
