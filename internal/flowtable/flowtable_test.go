package flowtable

import (
	"testing"
	"testing/quick"
	"time"

	"mic/internal/addr"
	"mic/internal/packet"
	"mic/internal/sim"
)

func pkt() *packet.Packet {
	return &packet.Packet{
		SrcMAC: 1, DstMAC: 2,
		SrcIP: addr.MustParseIP("10.0.0.1"), DstIP: addr.MustParseIP("10.0.0.8"),
		Proto: packet.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: 80,
		Payload: []byte("x"),
	}
}

func TestMatchFields(t *testing.T) {
	p := pkt()
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"any", Match{}, true},
		{"inport hit", Match{Mask: MatchInPort, InPort: 3}, true},
		{"inport miss", Match{Mask: MatchInPort, InPort: 4}, false},
		{"ipsrc hit", Match{Mask: MatchIPSrc, IPSrc: p.SrcIP}, true},
		{"ipsrc miss", Match{Mask: MatchIPSrc, IPSrc: p.SrcIP + 1}, false},
		{"ipdst hit", Match{Mask: MatchIPDst, IPDst: p.DstIP}, true},
		{"tuple hit", Match{Mask: MatchIPSrc | MatchIPDst | MatchTPDst, IPSrc: p.SrcIP, IPDst: p.DstIP, TPDst: 80}, true},
		{"tuple partial miss", Match{Mask: MatchIPSrc | MatchTPDst, IPSrc: p.SrcIP, TPDst: 81}, false},
		{"proto hit", Match{Mask: MatchProto, Proto: packet.ProtoTCP}, true},
		{"proto miss", Match{Mask: MatchProto, Proto: packet.ProtoUDP}, false},
		{"ethsrc hit", Match{Mask: MatchEthSrc, EthSrc: 1}, true},
		{"ethdst miss", Match{Mask: MatchEthDst, EthDst: 9}, false},
		{"tpsrc hit", Match{Mask: MatchTPSrc, TPSrc: 1234}, true},
		{"nompls hit", Match{Mask: MatchNoMPLS}, true},
		{"mpls on unlabeled", Match{Mask: MatchMPLS, MPLS: 5}, false},
	}
	for _, c := range cases {
		if got := c.m.Covers(p, 3); got != c.want {
			t.Errorf("%s: Covers = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMatchMPLS(t *testing.T) {
	p := pkt()
	p.PushMPLS(77)
	if !(Match{Mask: MatchMPLS, MPLS: 77}).Covers(p, 0) {
		t.Fatal("label match failed")
	}
	if (Match{Mask: MatchMPLS, MPLS: 78}).Covers(p, 0) {
		t.Fatal("wrong label matched")
	}
	if (Match{Mask: MatchNoMPLS}).Covers(p, 0) {
		t.Fatal("NoMPLS matched labeled packet")
	}
	p.PushMPLS(99) // outer label now 99
	if !(Match{Mask: MatchMPLS, MPLS: 99}).Covers(p, 0) {
		t.Fatal("outermost label not used")
	}
}

func TestMatchEqual(t *testing.T) {
	a := Match{Mask: MatchIPSrc | MatchIPDst, IPSrc: 1, IPDst: 2}
	b := Match{Mask: MatchIPSrc | MatchIPDst, IPSrc: 1, IPDst: 2, TPDst: 99} // TPDst unmasked: ignored
	if !a.Equal(b) {
		t.Fatal("Equal ignores unmasked fields incorrectly")
	}
	c := Match{Mask: MatchIPSrc | MatchIPDst, IPSrc: 1, IPDst: 3}
	if a.Equal(c) {
		t.Fatal("Equal missed differing masked field")
	}
	d := Match{Mask: MatchIPSrc, IPSrc: 1}
	if a.Equal(d) {
		t.Fatal("Equal missed differing masks")
	}
}

func TestActionsApply(t *testing.T) {
	p := pkt()
	for _, a := range []Action{
		SetEthSrc(10), SetEthDst(11),
		SetIPSrc(addr.MustParseIP("10.0.0.3")), SetIPDst(addr.MustParseIP("10.0.0.4")),
		SetTPSrc(1000), SetTPDst(2000),
		PushMPLS(500),
	} {
		a.Apply(p)
	}
	if p.SrcMAC != 10 || p.DstMAC != 11 {
		t.Errorf("MAC rewrite failed: %v", p)
	}
	if p.SrcIP.String() != "10.0.0.3" || p.DstIP.String() != "10.0.0.4" {
		t.Errorf("IP rewrite failed: %v", p)
	}
	if p.SrcPort != 1000 || p.DstPort != 2000 {
		t.Errorf("port rewrite failed: %v", p)
	}
	if l, _ := p.TopMPLS(); l != 500 {
		t.Errorf("push failed: %v", p.MPLS)
	}
	SetMPLS(600).Apply(p)
	if l, _ := p.TopMPLS(); l != 600 {
		t.Errorf("set_mpls failed: %v", p.MPLS)
	}
	PopMPLS{}.Apply(p)
	if len(p.MPLS) != 0 {
		t.Errorf("pop failed: %v", p.MPLS)
	}
	SetMPLS(700).Apply(p) // set on empty stack pushes
	if l, _ := p.TopMPLS(); l != 700 {
		t.Errorf("set_mpls on empty stack failed: %v", p.MPLS)
	}
}

func TestOutputActionsDoNotMutate(t *testing.T) {
	p := pkt()
	before := *p
	Output(3).Apply(p)
	OutputGroup(1).Apply(p)
	if p.SrcIP != before.SrcIP || p.DstIP != before.DstIP {
		t.Fatal("output action mutated packet")
	}
}

func TestMutationCount(t *testing.T) {
	actions := []Action{SetIPSrc(1), SetIPDst(2), Output(1), SetMPLS(3), OutputGroup(9)}
	if got := MutationCount(actions); got != 3 {
		t.Fatalf("MutationCount = %d, want 3", got)
	}
}

func TestTablePriorityOrder(t *testing.T) {
	tb := NewTable()
	lo := &Entry{Priority: 1, Match: Match{}, Cookie: 1}
	hi := &Entry{Priority: 10, Match: Match{Mask: MatchIPSrc, IPSrc: pkt().SrcIP}, Cookie: 2}
	tb.Insert(lo, 0)
	tb.Insert(hi, 0)
	e, _ := tb.Lookup(pkt(), 0, 0)
	if e != hi {
		t.Fatalf("Lookup returned cookie %d, want high-priority entry", e.Cookie)
	}
}

func TestTableTieBreakByInsertionOrder(t *testing.T) {
	tb := NewTable()
	first := &Entry{Priority: 5, Match: Match{Mask: MatchInPort, InPort: 0}, Cookie: 1}
	second := &Entry{Priority: 5, Match: Match{}, Cookie: 2}
	tb.Insert(first, 0)
	tb.Insert(second, 0)
	if e, _ := tb.Lookup(pkt(), 0, 0); e != first {
		t.Fatalf("tie broken wrong: cookie %d", e.Cookie)
	}
}

func TestTableReplaceSameMatch(t *testing.T) {
	tb := NewTable()
	m := Match{Mask: MatchIPDst, IPDst: 7}
	tb.Insert(&Entry{Priority: 5, Match: m, Cookie: 1}, 0)
	tb.Insert(&Entry{Priority: 5, Match: m, Cookie: 2}, 0)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", tb.Len())
	}
	if tb.Entries()[0].Cookie != 2 {
		t.Fatal("replace kept old entry")
	}
}

func TestTableMissReturnsNil(t *testing.T) {
	tb := NewTable()
	tb.Insert(&Entry{Priority: 1, Match: Match{Mask: MatchIPSrc, IPSrc: 99}}, 0)
	if e, _ := tb.Lookup(pkt(), 0, 0); e != nil {
		t.Fatal("miss returned an entry")
	}
}

func TestTableCounters(t *testing.T) {
	tb := NewTable()
	e := &Entry{Priority: 1, Match: Match{}}
	tb.Insert(e, 0)
	p := pkt()
	tb.Lookup(p, 0, 100)
	tb.Lookup(p, 0, 200)
	if e.Packets != 2 {
		t.Fatalf("Packets = %d", e.Packets)
	}
	if e.Bytes != uint64(2*p.WireLen()) {
		t.Fatalf("Bytes = %d", e.Bytes)
	}
	if e.LastUsed != 200 {
		t.Fatalf("LastUsed = %v", e.LastUsed)
	}
}

func TestTableDeleteByCookie(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 5; i++ {
		tb.Insert(&Entry{Priority: i, Match: Match{Mask: MatchInPort, InPort: i}, Cookie: uint64(i % 2)}, 0)
	}
	if n := tb.DeleteByCookie(0); n != 3 {
		t.Fatalf("deleted %d, want 3", n)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	for _, e := range tb.Entries() {
		if e.Cookie == 0 {
			t.Fatal("cookie 0 survived")
		}
	}
}

func TestTableExpireIdle(t *testing.T) {
	tb := NewTable()
	e := &Entry{Priority: 1, Match: Match{}, IdleTimeout: 10 * time.Second}
	tb.Insert(e, 0)
	tb.Lookup(pkt(), 0, sim.Time(5e9))
	if ev := tb.Expire(sim.Time(14e9)); len(ev) != 0 {
		t.Fatal("expired while still fresh")
	}
	if ev := tb.Expire(sim.Time(15e9)); len(ev) != 1 {
		t.Fatal("idle entry not expired")
	}
	if tb.Len() != 0 {
		t.Fatal("expired entry still installed")
	}
}

func TestTableExpireHard(t *testing.T) {
	tb := NewTable()
	e := &Entry{Priority: 1, Match: Match{}, HardTimeout: time.Second}
	tb.Insert(e, 0)
	tb.Lookup(pkt(), 0, sim.Time(9e8)) // refresh does not matter for hard timeout
	if ev := tb.Expire(sim.Time(1e9)); len(ev) != 1 {
		t.Fatal("hard timeout not honored")
	}
}

func TestTableConflicts(t *testing.T) {
	tb := NewTable()
	m := Match{Mask: MatchIPSrc | MatchIPDst, IPSrc: 1, IPDst: 2}
	tb.Insert(&Entry{Priority: 7, Match: m, Cookie: 1}, 0)
	if len(tb.Conflicts(m, 7)) != 1 {
		t.Fatal("conflict not detected")
	}
	if len(tb.Conflicts(m, 8)) != 0 {
		t.Fatal("different priority reported as conflict")
	}
}

func TestGroupTable(t *testing.T) {
	tb := NewTable()
	g := &Group{ID: 4, Buckets: []Bucket{{Actions: []Action{Output(1)}}, {Actions: []Action{Output(2)}}}}
	tb.SetGroup(g)
	got, ok := tb.Group(4)
	if !ok || len(got.Buckets) != 2 {
		t.Fatalf("Group lookup = %v, %v", got, ok)
	}
	tb.DeleteGroup(4)
	if _, ok := tb.Group(4); ok {
		t.Fatal("deleted group still present")
	}
}

func TestLookupHighestPriorityProperty(t *testing.T) {
	// For random entry sets, Lookup must return a covering entry with
	// maximal priority among covering entries.
	err := quick.Check(func(ports []uint8, prios []uint8) bool {
		if len(ports) > 20 {
			ports = ports[:20]
		}
		tb := NewTable()
		for i, pt := range ports {
			prio := 0
			if i < len(prios) {
				prio = int(prios[i] % 8)
			}
			tb.Insert(&Entry{Priority: prio, Match: Match{Mask: MatchInPort, InPort: int(pt % 4)}, Cookie: uint64(i)}, 0)
		}
		p := pkt()
		got, _ := tb.Lookup(p, 2, 0)
		best := -1
		for _, e := range tb.Entries() {
			if e.Match.Covers(p, 2) && e.Priority > best {
				best = e.Priority
			}
		}
		if best == -1 {
			return got == nil
		}
		return got != nil && got.Priority == best
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup64Entries(b *testing.B) {
	tb := NewTable()
	for i := 0; i < 64; i++ {
		tb.Insert(&Entry{Priority: i, Match: Match{Mask: MatchIPSrc, IPSrc: addr.IP(i + 100)}}, 0)
	}
	tb.Insert(&Entry{Priority: 0, Match: Match{}}, 0)
	p := pkt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(p, 0, 0)
	}
}
