package flowtable

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mic/internal/addr"
	"mic/internal/packet"
	"mic/internal/sim"
)

// --- differential property test: cached lookup ≡ linear scan -------------

// Small value domains so random entries and packets collide often — the
// interesting regime for a cache.
var diffMasks = []FieldMask{
	0, // match-any
	MatchInPort,
	MatchIPSrc,
	MatchIPDst,
	MatchIPSrc | MatchIPDst,
	MatchIPSrc | MatchIPDst | MatchTPDst,
	MatchEthSrc,
	MatchEthDst | MatchProto,
	MatchProto,
	MatchTPSrc,
	MatchMPLS,
	MatchMPLS | MatchIPDst,
	MatchNoMPLS,
	MatchNoMPLS | MatchIPSrc,
	MatchInPort | MatchMPLS,
}

func randomMatch(rng *rand.Rand) Match {
	return Match{
		Mask:   diffMasks[rng.Intn(len(diffMasks))],
		InPort: rng.Intn(4),
		EthSrc: addr.MAC(rng.Intn(3)),
		EthDst: addr.MAC(rng.Intn(3)),
		IPSrc:  addr.IP(rng.Intn(4)),
		IPDst:  addr.IP(rng.Intn(4)),
		Proto:  []uint8{packet.ProtoTCP, packet.ProtoUDP}[rng.Intn(2)],
		TPSrc:  uint16(80 + rng.Intn(2)),
		TPDst:  uint16(80 + rng.Intn(2)),
		MPLS:   addr.Label(rng.Intn(3)),
	}
}

func randomEntry(rng *rand.Rand) *Entry {
	e := &Entry{
		Priority: rng.Intn(8),
		Match:    randomMatch(rng),
		Cookie:   uint64(rng.Intn(6)),
	}
	if rng.Intn(4) == 0 {
		e.IdleTimeout = time.Duration(1+rng.Intn(5)) * time.Second
	}
	if rng.Intn(4) == 0 {
		e.HardTimeout = time.Duration(1+rng.Intn(5)) * time.Second
	}
	return e
}

func randomPacket(rng *rand.Rand) *packet.Packet {
	p := &packet.Packet{
		SrcMAC: addr.MAC(rng.Intn(3)),
		DstMAC: addr.MAC(rng.Intn(3)),
		SrcIP:  addr.IP(rng.Intn(4)),
		DstIP:  addr.IP(rng.Intn(4)),
		Proto:  []uint8{packet.ProtoTCP, packet.ProtoUDP}[rng.Intn(2)],
		TTL:    64,
	}
	p.SrcPort = uint16(80 + rng.Intn(2))
	p.DstPort = uint16(80 + rng.Intn(2))
	for n := rng.Intn(3); n > 0; n-- {
		p.PushMPLS(addr.Label(rng.Intn(3)))
	}
	return p
}

// TestDifferentialCachedVsLinear drives random tables through interleaved
// lookups and mutations (insert, replace, cookie delete, expiry, group
// edits) and checks every cached/classifier Lookup against the linear
// priority scan oracle. This is the equivalence proof for the whole caching
// design, invalidation included.
func TestDifferentialCachedVsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		tb := NewTable()
		now := sim.Time(0)
		for i, n := 0, rng.Intn(40); i < n; i++ {
			tb.Insert(randomEntry(rng), now)
		}
		for step := 0; step < 300; step++ {
			now += sim.Time(rng.Intn(int(time.Second)))
			p := randomPacket(rng)
			inPort := rng.Intn(4)
			want := tb.lookupLinear(p, inPort)
			got, _ := tb.Lookup(p, inPort, now)
			if got != want {
				t.Fatalf("trial %d step %d: cached Lookup = %+v, linear oracle = %+v\npacket %v inPort %d\ntable:\n%s",
					trial, step, got, want, p, inPort, tb.Dump())
			}
			switch rng.Intn(12) {
			case 0, 1:
				tb.Insert(randomEntry(rng), now)
			case 2:
				tb.DeleteByCookie(uint64(rng.Intn(6)))
			case 3:
				tb.Expire(now)
			case 4:
				tb.SetGroup(&Group{ID: GroupID(rng.Intn(3))})
			case 5:
				tb.DeleteGroup(GroupID(rng.Intn(3)))
			}
		}
	}
}

// --- invalidation edge cases ---------------------------------------------

func lookupMust(t *testing.T, tb *Table, p *packet.Packet, inPort int, now sim.Time) (*Entry, bool) {
	t.Helper()
	e, hit := tb.Lookup(p, inPort, now)
	return e, hit
}

func TestCacheHitAfterMiss(t *testing.T) {
	tb := NewTable()
	e := &Entry{Priority: 1, Match: Match{Mask: MatchIPDst, IPDst: pkt().DstIP}}
	tb.Insert(e, 0)
	if _, hit := tb.Lookup(pkt(), 0, 0); hit {
		t.Fatal("first lookup reported a cache hit")
	}
	got, hit := tb.Lookup(pkt(), 0, 0)
	if !hit || got != e {
		t.Fatalf("second lookup: entry %v hit %v, want cached %v", got, hit, e)
	}
	if tb.CacheHits != 1 || tb.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", tb.CacheHits, tb.CacheMisses)
	}
}

func TestCacheMissesAreNotCached(t *testing.T) {
	tb := NewTable()
	tb.Insert(&Entry{Priority: 1, Match: Match{Mask: MatchIPSrc, IPSrc: 99}}, 0)
	for i := 0; i < 3; i++ {
		if e, hit := tb.Lookup(pkt(), 0, 0); e != nil || hit {
			t.Fatalf("lookup %d: entry %v hit %v, want table miss on slow path", i, e, hit)
		}
	}
	if tb.CacheMisses != 3 {
		t.Fatalf("CacheMisses = %d, want 3 (misses must stay slow-path upcalls)", tb.CacheMisses)
	}
}

func TestCacheInvalidatedByHigherPriorityInsert(t *testing.T) {
	tb := NewTable()
	lo := &Entry{Priority: 1, Match: Match{}}
	tb.Insert(lo, 0)
	tb.Lookup(pkt(), 0, 0)
	tb.Lookup(pkt(), 0, 0) // cached

	hi := &Entry{Priority: 9, Match: Match{Mask: MatchIPDst, IPDst: pkt().DstIP}}
	tb.Insert(hi, 0)
	got, hit := tb.Lookup(pkt(), 0, 0)
	if hit {
		t.Fatal("stale cache entry served after Insert")
	}
	if got != hi {
		t.Fatalf("post-insert lookup = %+v, want new high-priority entry", got)
	}
}

// TestCacheInvalidatedByReplaceInsert covers replace-on-equal-match: the new
// entry takes the old one's place (and tie-break position) and the cache
// must stop serving the replaced pointer.
func TestCacheInvalidatedByReplaceInsert(t *testing.T) {
	tb := NewTable()
	m := Match{Mask: MatchIPDst, IPDst: pkt().DstIP}
	old := &Entry{Priority: 5, Match: m, Cookie: 1}
	tb.Insert(old, 0)
	// A later entry that ties on priority: the replacement must keep winning
	// the tie-break by inheriting old's insertion position.
	tie := &Entry{Priority: 5, Match: Match{}, Cookie: 2}
	tb.Insert(tie, 0)
	tb.Lookup(pkt(), 0, 0)
	tb.Lookup(pkt(), 0, 0) // cached -> old

	repl := &Entry{Priority: 5, Match: m, Cookie: 3}
	tb.Insert(repl, 0)
	got, hit := tb.Lookup(pkt(), 0, 0)
	if hit {
		t.Fatal("stale cache entry served after replace")
	}
	if got != repl {
		t.Fatalf("post-replace lookup cookie = %d, want replacement (cookie 3) to inherit position", got.Cookie)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d after replace, want 2", tb.Len())
	}
}

func TestCacheInvalidatedByCookieDelete(t *testing.T) {
	tb := NewTable()
	hi := &Entry{Priority: 9, Match: Match{Mask: MatchIPDst, IPDst: pkt().DstIP}, Cookie: 7}
	lo := &Entry{Priority: 1, Match: Match{}, Cookie: 8}
	tb.Insert(hi, 0)
	tb.Insert(lo, 0)
	tb.Lookup(pkt(), 0, 0)
	tb.Lookup(pkt(), 0, 0) // cached -> hi

	if n := tb.DeleteByCookie(7); n != 1 {
		t.Fatalf("DeleteByCookie removed %d, want 1", n)
	}
	got, hit := tb.Lookup(pkt(), 0, 0)
	if hit {
		t.Fatal("stale cache entry served after cookie delete")
	}
	if got != lo {
		t.Fatalf("post-delete lookup = %+v, want fallback entry", got)
	}
}

// TestCacheInvalidatedByTimeoutEviction exercises idle eviction under load:
// cache hits keep refreshing LastUsed (so the entry survives while traffic
// flows), then a quiet gap lets Expire evict it, and the cache must not
// serve the evicted entry afterwards.
func TestCacheInvalidatedByTimeoutEviction(t *testing.T) {
	tb := NewTable()
	e := &Entry{Priority: 5, Match: Match{Mask: MatchIPDst, IPDst: pkt().DstIP}, IdleTimeout: 10 * time.Second}
	lo := &Entry{Priority: 1, Match: Match{}}
	tb.Insert(e, 0)
	tb.Insert(lo, 0)

	// Sustained load: hits at 1s intervals, interleaved with Expire sweeps.
	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		now += sim.Time(time.Second)
		if ev := tb.Expire(now); len(ev) != 0 {
			t.Fatalf("entry evicted at %v despite active traffic", now)
		}
		got, _ := tb.Lookup(pkt(), 0, now)
		if got != e {
			t.Fatalf("lookup under load = %+v, want idle-timeout entry", got)
		}
	}

	// Quiet gap exceeds the idle timeout.
	now += sim.Time(11 * time.Second)
	ev := tb.Expire(now)
	if len(ev) != 1 || ev[0] != e {
		t.Fatalf("Expire after gap = %v, want the idle entry", ev)
	}
	got, hit := tb.Lookup(pkt(), 0, now)
	if hit {
		t.Fatal("stale cache entry served after timeout eviction")
	}
	if got != lo {
		t.Fatalf("post-eviction lookup = %+v, want fallback entry", got)
	}
}

func TestCacheInvalidatedByGroupEdits(t *testing.T) {
	tb := NewTable()
	e := &Entry{Priority: 5, Match: Match{}, Actions: []Action{OutputGroup(4)}}
	tb.Insert(e, 0)
	tb.Lookup(pkt(), 0, 0)
	if _, hit := tb.Lookup(pkt(), 0, 0); !hit {
		t.Fatal("warm-up lookup not cached")
	}

	tb.SetGroup(&Group{ID: 4, Buckets: []Bucket{{Actions: []Action{Output(1)}}}})
	if _, hit := tb.Lookup(pkt(), 0, 0); hit {
		t.Fatal("cache survived SetGroup: group edits must flush the fast path")
	}
	if _, hit := tb.Lookup(pkt(), 0, 0); !hit {
		t.Fatal("cache not repopulated after SetGroup flush")
	}

	tb.DeleteGroup(4)
	if _, hit := tb.Lookup(pkt(), 0, 0); hit {
		t.Fatal("cache survived DeleteGroup")
	}
}

func TestMicroCacheBounded(t *testing.T) {
	tb := NewTable()
	tb.Insert(&Entry{Priority: 1, Match: Match{}}, 0)
	for i := 0; i < microCap+100; i++ {
		p := pkt()
		p.SetSrcIP(addr.IP(i))
		tb.Lookup(p, 0, 0)
	}
	if len(tb.micro) > microCap {
		t.Fatalf("microflow cache grew to %d entries, cap is %d", len(tb.micro), microCap)
	}
}

// TestInsertKeepsSortedOrder checks the binary-search insertion against the
// documented invariant directly for a mix of priorities including ties.
func TestInsertKeepsSortedOrder(t *testing.T) {
	tb := NewTable()
	prios := []int{5, 1, 9, 5, 3, 9, 0, 5, 7, 2}
	for i, pr := range prios {
		tb.Insert(&Entry{Priority: pr, Match: Match{Mask: MatchInPort, InPort: i}, Cookie: uint64(i)}, 0)
	}
	es := tb.Entries()
	for i := 1; i < len(es); i++ {
		if entryLess(es[i], es[i-1]) {
			t.Fatalf("entries out of order at %d: %s", i, tb.Dump())
		}
	}
	// Equal priorities must tie-break by insertion order.
	var fives []uint64
	for _, e := range es {
		if e.Priority == 5 {
			fives = append(fives, e.Cookie)
		}
	}
	if fmt.Sprint(fives) != "[0 3 7]" {
		t.Fatalf("tie-break order = %v, want insertion order [0 3 7]", fives)
	}
}

func BenchmarkInsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := NewTable()
		for j := 0; j < 128; j++ {
			tb.Insert(&Entry{Priority: j % 16, Match: Match{Mask: MatchMPLS, MPLS: addr.Label(j)}}, 0)
		}
	}
}

func BenchmarkLookupCacheHit(b *testing.B) {
	tb := NewTable()
	for i := 0; i < 64; i++ {
		tb.Insert(&Entry{Priority: i, Match: Match{Mask: MatchIPSrc, IPSrc: addr.IP(i + 100)}}, 0)
	}
	tb.Insert(&Entry{Priority: 0, Match: Match{}}, 0)
	p := pkt()
	tb.Lookup(p, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(p, 0, 0)
	}
}
