package flowtable

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mic/internal/addr"
	"mic/internal/packet"
	"mic/internal/sim"
)

// ErrTableFull is returned by TryInsert when the table is at Capacity and
// the eviction policy cannot make room for a new entry.
var ErrTableFull = errors.New("flowtable: table full")

// EvictPolicy selects what happens when an insert finds the table at
// Capacity. Real TCAMs deny new entries; software switches sometimes evict.
type EvictPolicy int

const (
	// EvictDeny refuses the new entry (the default, TCAM semantics).
	EvictDeny EvictPolicy = iota
	// EvictLRU removes the least-recently-used Evictable entry to make
	// room, ties broken by lowest insertion sequence. Entries not marked
	// Evictable (common routing) are never victims.
	EvictLRU
)

// EvictReason says why an entry left the table without an explicit delete.
type EvictReason int

const (
	// EvictIdle: the entry's IdleTimeout elapsed without traffic.
	EvictIdle EvictReason = iota
	// EvictHard: the entry's HardTimeout elapsed since installation.
	EvictHard
	// EvictCapacity: the entry was displaced by an insert under EvictLRU.
	EvictCapacity
)

func (r EvictReason) String() string {
	switch r {
	case EvictIdle:
		return "idle"
	case EvictHard:
		return "hard"
	case EvictCapacity:
		return "capacity"
	}
	return "unknown"
}

// Entry is one installed flow rule.
type Entry struct {
	Priority int
	Match    Match
	Actions  []Action

	// Cookie tags the owner (the MC uses one cookie per m-flow) so related
	// rules can be deleted together.
	Cookie uint64

	// Evictable opts the entry into capacity eviction under EvictLRU.
	// Common routing rules leave it false so load never displaces the
	// baseline fabric.
	Evictable bool

	// IdleTimeout evicts the entry when unused for that long; HardTimeout
	// evicts it unconditionally after installation. Zero disables.
	IdleTimeout time.Duration
	HardTimeout time.Duration

	// Counters.
	Packets   uint64
	Bytes     uint64
	Installed sim.Time
	LastUsed  sim.Time

	// seq is the entry's insertion sequence number: the tiebreak below equal
	// priority, mirroring OpenFlow's "most recently the same" overlap rule.
	// A replacing Insert inherits the replaced entry's seq, keeping its
	// position.
	seq uint64
}

// subtable is the classifier's per-match-shape hash index, one per distinct
// FieldMask in use (OVS's tuple space search). All entries whose match
// constrains the same field set live in one subtable, bucketed by their
// normalized match; a packet probes each subtable with the corresponding
// projection of its own headers.
type subtable struct {
	mask    FieldMask
	buckets map[Match][]*Entry // normalized match -> entries, priority desc / seq asc
}

// microKey is the exact-match microflow cache key: the packet.FlowKey and
// in-port the ISSUE's fast path is keyed on, widened with every other field a
// Match may constrain so a cached result can never disagree with the
// classifier regardless of which fields installed rules inspect.
type microKey struct {
	key    packet.FlowKey
	inPort int
	ethSrc addr.MAC
	ethDst addr.MAC
	proto  uint8
	tpSrc  uint16
	tpDst  uint16
}

// microEntry is a cached lookup result, valid only while gen matches the
// table's current generation.
type microEntry struct {
	e   *Entry
	gen uint64
}

// microCap bounds the microflow cache; when full it is reset wholesale
// rather than evicted piecemeal (OVS similarly sizes its cache and relies on
// cheap re-population from the classifier).
const microCap = 8192

// Table is a single-table OpenFlow pipeline plus a group table. Lookups are
// served OVS-style: an exact-match microflow cache first, then a hash-indexed
// classifier, with the linear priority scan retained only as the test oracle.
type Table struct {
	entries []*Entry // sorted by descending priority, then ascending seq
	groups  map[GroupID]*Group
	seq     uint64

	subs     map[FieldMask]*subtable
	subOrder []*subtable // creation order; deterministic iteration (no map range)

	micro map[microKey]microEntry
	gen   uint64 // bumped on any table modification; stale cache entries ignored

	// CacheHits / CacheMisses count Lookup calls served by the microflow
	// cache vs the full classifier — the fast/slow-path split the virtual
	// CPU model charges differently.
	CacheHits   uint64
	CacheMisses uint64

	// Capacity bounds the number of installed flow entries (the TCAM
	// model); zero keeps the table unbounded. Replacing an existing entry
	// never counts against capacity. The group table is not bounded.
	Capacity int

	// Policy selects the at-capacity behaviour for new entries.
	Policy EvictPolicy

	// OnEvict, when non-nil, observes every timeout or capacity eviction
	// (not explicit deletes) after the entry has left the table.
	OnEvict func(e *Entry, reason EvictReason)

	// Per-reason eviction counters.
	EvictedIdle     uint64
	EvictedHard     uint64
	EvictedCapacity uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		groups: make(map[GroupID]*Group),
		subs:   make(map[FieldMask]*subtable),
		micro:  make(map[microKey]microEntry),
	}
}

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// invalidate marks every microflow cache entry stale in O(1). Callers bump
// the generation on any mutation that could change a lookup result.
func (t *Table) invalidate() { t.gen++ }

// entryLess is the match order: descending priority, then ascending seq.
func entryLess(a, b *Entry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

// subtableFor returns the subtable indexing matches of shape mask, creating
// it on first use.
func (t *Table) subtableFor(mask FieldMask) *subtable {
	st := t.subs[mask]
	if st == nil {
		st = &subtable{mask: mask, buckets: make(map[Match][]*Entry)}
		t.subs[mask] = st
		t.subOrder = append(t.subOrder, st)
	}
	return st
}

// indexOf locates e in the sorted entries slice by binary search on
// (priority, seq); ordering is total because seq is unique.
func (t *Table) indexOf(e *Entry) int {
	i := sort.Search(len(t.entries), func(i int) bool { return !entryLess(t.entries[i], e) })
	if i < len(t.entries) && t.entries[i] == e {
		return i
	}
	return -1
}

// Insert installs an entry at time now, ignoring capacity refusals — the
// legacy unbounded-table API. Callers that set Capacity should use TryInsert
// so a refused entry is an error, not a silent drop.
func (t *Table) Insert(e *Entry, now sim.Time) {
	// lint:ignore errdrop documented legacy unbounded-table API: capacity refusals are deliberately ignored; bounded callers use TryInsert
	_ = t.TryInsert(e, now)
}

// TryInsert installs an entry at time now. Installing an entry whose match
// and priority exactly equal an existing entry's replaces it in place
// (OpenFlow semantics; the replacement inherits the old entry's position in
// the match order) and never counts against capacity. A genuinely new entry
// against a full table either displaces an LRU victim (Policy==EvictLRU and
// some entry is Evictable) or fails with ErrTableFull, leaving the table —
// and the microflow cache generation — untouched. Insertion is
// O(log n + shift) into the already-sorted slice — no re-sort per FlowMod.
func (t *Table) TryInsert(e *Entry, now sim.Time) error {
	norm := e.Match.normalized()
	st := t.subtableFor(norm.Mask)
	bucket := st.buckets[norm]
	for i, old := range bucket {
		if old.Priority == e.Priority {
			// Replace: same match, same priority. Within a bucket matches
			// are Equal by construction, so priorities are unique.
			e.Installed = now
			e.LastUsed = now
			e.seq = old.seq
			t.invalidate()
			bucket[i] = e
			if j := t.indexOf(old); j >= 0 {
				t.entries[j] = e
			}
			return nil
		}
	}

	if t.Capacity > 0 && len(t.entries) >= t.Capacity {
		if t.Policy != EvictLRU || !t.evictLRU() {
			return ErrTableFull
		}
		// The victim may have shared e's bucket; re-fetch.
		bucket = st.buckets[norm]
	}

	e.Installed = now
	e.LastUsed = now
	t.invalidate()
	t.seq++
	e.seq = t.seq

	// Bucket insertion point: priorities within a bucket are unique, so
	// order by priority alone.
	bi := sort.Search(len(bucket), func(i int) bool { return bucket[i].Priority < e.Priority })
	bucket = append(bucket, nil)
	copy(bucket[bi+1:], bucket[bi:])
	bucket[bi] = e
	st.buckets[norm] = bucket

	// Entries insertion point: e has the largest seq, so it goes after every
	// entry of >= priority.
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Priority < e.Priority })
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	return nil
}

// evictLRU removes the least-recently-used Evictable entry (ties broken by
// lowest seq, so the scan is deterministic) and reports whether a victim was
// found. The removal bumps the cache generation: a cached hit on the victim
// must miss afterwards.
func (t *Table) evictLRU() bool {
	var victim *Entry
	for _, e := range t.entries {
		if !e.Evictable {
			continue
		}
		if victim == nil || e.LastUsed < victim.LastUsed ||
			(e.LastUsed == victim.LastUsed && e.seq < victim.seq) {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	if i := t.indexOf(victim); i >= 0 {
		copy(t.entries[i:], t.entries[i+1:])
		t.entries[len(t.entries)-1] = nil
		t.entries = t.entries[:len(t.entries)-1]
	}
	t.removeFromIndex(victim)
	t.invalidate()
	t.EvictedCapacity++
	if t.OnEvict != nil {
		t.OnEvict(victim, EvictCapacity)
	}
	return true
}

// microKeyOf projects the packet onto the microflow cache key.
func microKeyOf(p *packet.Packet, inPort int) microKey {
	return microKey{
		key:    p.Key(),
		inPort: inPort,
		ethSrc: p.SrcMAC,
		ethDst: p.DstMAC,
		proto:  p.Proto,
		tpSrc:  p.SrcPort,
		tpDst:  p.DstPort,
	}
}

// Lookup returns the highest-priority entry covering the packet, updating
// its counters, or nil on a table miss. hit reports whether the microflow
// cache served the result (the switch charges fast-path vs slow-path CPU on
// this). Misses are never cached, mirroring OVS, where a table miss is an
// upcall rather than a datapath flow.
func (t *Table) Lookup(p *packet.Packet, inPort int, now sim.Time) (e *Entry, hit bool) {
	k := microKeyOf(p, inPort)
	if me, ok := t.micro[k]; ok && me.gen == t.gen {
		t.CacheHits++
		me.e.Packets++
		me.e.Bytes += uint64(p.WireLen())
		me.e.LastUsed = now
		return me.e, true
	}
	t.CacheMisses++
	best := t.lookupClassifier(p, inPort)
	if best == nil {
		return nil, false
	}
	best.Packets++
	best.Bytes += uint64(p.WireLen())
	best.LastUsed = now
	if len(t.micro) >= microCap {
		clear(t.micro)
	}
	t.micro[k] = microEntry{e: best, gen: t.gen}
	return best, false
}

// lookupClassifier probes every subtable with the packet's projection and
// returns the best entry in match order, without touching counters or the
// cache.
func (t *Table) lookupClassifier(p *packet.Packet, inPort int) *Entry {
	var best *Entry
	for _, st := range t.subOrder {
		key, ok := projectKey(st.mask, p, inPort)
		if !ok {
			continue
		}
		bucket := st.buckets[key]
		if len(bucket) == 0 {
			continue
		}
		// bucket[0] is the subtable's best candidate; every entry in the
		// bucket covers the packet because the projection matched exactly.
		if e := bucket[0]; best == nil || entryLess(e, best) {
			best = e
		}
	}
	return best
}

// lookupLinear is the pre-cache linear priority scan, kept as the oracle for
// the cached-vs-linear differential test. It does not update counters.
func (t *Table) lookupLinear(p *packet.Packet, inPort int) *Entry {
	for _, e := range t.entries {
		if e.Match.Covers(p, inPort) {
			return e
		}
	}
	return nil
}

// removeFromIndex detaches e from its subtable bucket.
func (t *Table) removeFromIndex(e *Entry) {
	norm := e.Match.normalized()
	st := t.subs[norm.Mask]
	if st == nil {
		return
	}
	b := st.buckets[norm]
	for i, x := range b {
		if x == e {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = nil
			b = b[:len(b)-1]
			break
		}
	}
	if len(b) == 0 {
		delete(st.buckets, norm)
	} else {
		st.buckets[norm] = b
	}
}

// DeleteByCookie removes all entries with the given cookie and returns how
// many were removed.
func (t *Table) DeleteByCookie(cookie uint64) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if e.Cookie == cookie {
			removed++
			t.removeFromIndex(e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	if removed > 0 {
		t.invalidate()
	}
	return removed
}

// Expire evicts entries whose idle or hard timeout has elapsed by now, and
// returns the evicted entries. Hard expiry wins the per-reason counter when
// both timeouts have lapsed (the entry was doomed regardless of traffic).
func (t *Table) Expire(now sim.Time) []*Entry {
	var evicted []*Entry
	var reasons []EvictReason
	kept := t.entries[:0]
	for _, e := range t.entries {
		idle := e.IdleTimeout > 0 && now.Sub(e.LastUsed) >= e.IdleTimeout
		hard := e.HardTimeout > 0 && now.Sub(e.Installed) >= e.HardTimeout
		if idle || hard {
			evicted = append(evicted, e)
			if hard {
				t.EvictedHard++
				reasons = append(reasons, EvictHard)
			} else {
				t.EvictedIdle++
				reasons = append(reasons, EvictIdle)
			}
			t.removeFromIndex(e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	if len(evicted) > 0 {
		t.invalidate()
	}
	if t.OnEvict != nil {
		for i, e := range evicted {
			t.OnEvict(e, reasons[i])
		}
	}
	return evicted
}

// Conflicts returns entries whose match equals m at the same priority —
// the ambiguity MIC's Collision Avoidance Mechanism must rule out.
func (t *Table) Conflicts(m Match, priority int) []*Entry {
	norm := m.normalized()
	st := t.subs[norm.Mask]
	if st == nil {
		return nil
	}
	var out []*Entry
	for _, e := range st.buckets[norm] {
		if e.Priority == priority {
			out = append(out, e)
		}
	}
	return out
}

// Entries returns the installed entries in match order (descending
// priority). The returned slice is shared; callers must not modify it.
func (t *Table) Entries() []*Entry { return t.entries }

// SetGroup installs or replaces a group. The microflow cache is flushed:
// cached entries may reference the group through their actions, and a
// group edit must take effect on the next packet.
func (t *Table) SetGroup(g *Group) {
	t.invalidate()
	t.groups[g.ID] = g
}

// Group looks up a group by ID.
func (t *Table) Group(id GroupID) (*Group, bool) {
	g, ok := t.groups[id]
	return g, ok
}

// DeleteGroup removes a group, flushing the microflow cache like SetGroup.
func (t *Table) DeleteGroup(id GroupID) {
	t.invalidate()
	delete(t.groups, id)
}

// GroupIDs returns the installed group IDs in ascending order — the group
// half of a flow-table dump, used by controller reconciliation to spot
// stale or missing groups.
func (t *Table) GroupIDs() []GroupID {
	ids := make([]GroupID, 0, len(t.groups))
	// lint:ignore detrange keys are collected then sorted immediately below
	for id := range t.groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dump renders the table — flow entries in match order, then the group
// table in ascending group ID so the dump is byte-stable across runs.
func (t *Table) Dump() string {
	s := ""
	for _, e := range t.entries {
		s += fmt.Sprintf("prio=%d cookie=%d %v ->", e.Priority, e.Cookie, e.Match)
		for _, a := range e.Actions {
			s += " " + a.String()
		}
		s += fmt.Sprintf(" (pkts=%d)\n", e.Packets)
	}
	for _, id := range t.GroupIDs() {
		g := t.groups[id]
		s += fmt.Sprintf("group=%d type=all buckets=%d ->", uint32(id), len(g.Buckets))
		for _, b := range g.Buckets {
			for _, a := range b.Actions {
				s += " " + a.String()
			}
			s += " |"
		}
		s += "\n"
	}
	return s
}
