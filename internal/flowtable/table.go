package flowtable

import (
	"fmt"
	"sort"
	"time"

	"mic/internal/packet"
	"mic/internal/sim"
)

// Entry is one installed flow rule.
type Entry struct {
	Priority int
	Match    Match
	Actions  []Action

	// Cookie tags the owner (the MC uses one cookie per m-flow) so related
	// rules can be deleted together.
	Cookie uint64

	// IdleTimeout evicts the entry when unused for that long; HardTimeout
	// evicts it unconditionally after installation. Zero disables.
	IdleTimeout time.Duration
	HardTimeout time.Duration

	// Counters.
	Packets   uint64
	Bytes     uint64
	Installed sim.Time
	LastUsed  sim.Time
}

// Table is a single-table OpenFlow pipeline plus a group table.
type Table struct {
	entries []*Entry // sorted by descending priority, then insertion order
	groups  map[GroupID]*Group
	seq     uint64
	order   map[*Entry]uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{groups: make(map[GroupID]*Group), order: make(map[*Entry]uint64)}
}

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Insert installs an entry at time now. Installing an entry whose match and
// priority exactly equal an existing entry's replaces it (OpenFlow
// semantics).
func (t *Table) Insert(e *Entry, now sim.Time) {
	e.Installed = now
	e.LastUsed = now
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match.Equal(e.Match) {
			delete(t.order, old)
			t.seq++
			t.order[e] = t.seq
			t.entries[i] = e
			return
		}
	}
	t.seq++
	t.order[e] = t.seq
	t.entries = append(t.entries, e)
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].Priority != t.entries[j].Priority {
			return t.entries[i].Priority > t.entries[j].Priority
		}
		return t.order[t.entries[i]] < t.order[t.entries[j]]
	})
}

// Lookup returns the highest-priority entry covering the packet, updating
// its counters, or nil on a table miss.
func (t *Table) Lookup(p *packet.Packet, inPort int, now sim.Time) *Entry {
	for _, e := range t.entries {
		if e.Match.Covers(p, inPort) {
			e.Packets++
			e.Bytes += uint64(p.WireLen())
			e.LastUsed = now
			return e
		}
	}
	return nil
}

// DeleteByCookie removes all entries with the given cookie and returns how
// many were removed.
func (t *Table) DeleteByCookie(cookie uint64) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if e.Cookie == cookie {
			removed++
			delete(t.order, e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	return removed
}

// Expire evicts entries whose idle or hard timeout has elapsed by now, and
// returns the evicted entries.
func (t *Table) Expire(now sim.Time) []*Entry {
	var evicted []*Entry
	kept := t.entries[:0]
	for _, e := range t.entries {
		idle := e.IdleTimeout > 0 && now.Sub(e.LastUsed) >= e.IdleTimeout
		hard := e.HardTimeout > 0 && now.Sub(e.Installed) >= e.HardTimeout
		if idle || hard {
			evicted = append(evicted, e)
			delete(t.order, e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	return evicted
}

// Conflicts returns entries whose match equals m at the same priority —
// the ambiguity MIC's Collision Avoidance Mechanism must rule out.
func (t *Table) Conflicts(m Match, priority int) []*Entry {
	var out []*Entry
	for _, e := range t.entries {
		if e.Priority == priority && e.Match.Equal(m) {
			out = append(out, e)
		}
	}
	return out
}

// Entries returns the installed entries in match order (descending
// priority). The returned slice is shared; callers must not modify it.
func (t *Table) Entries() []*Entry { return t.entries }

// SetGroup installs or replaces a group.
func (t *Table) SetGroup(g *Group) { t.groups[g.ID] = g }

// Group looks up a group by ID.
func (t *Table) Group(id GroupID) (*Group, bool) {
	g, ok := t.groups[id]
	return g, ok
}

// DeleteGroup removes a group.
func (t *Table) DeleteGroup(id GroupID) { delete(t.groups, id) }

// Dump renders the table — flow entries in match order, then the group
// table in ascending group ID so the dump is byte-stable across runs.
func (t *Table) Dump() string {
	s := ""
	for _, e := range t.entries {
		s += fmt.Sprintf("prio=%d cookie=%d %v ->", e.Priority, e.Cookie, e.Match)
		for _, a := range e.Actions {
			s += " " + a.String()
		}
		s += fmt.Sprintf(" (pkts=%d)\n", e.Packets)
	}
	ids := make([]GroupID, 0, len(t.groups))
	// lint:ignore detrange keys are collected then sorted immediately below
	for id := range t.groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		g := t.groups[id]
		s += fmt.Sprintf("group=%d type=all buckets=%d ->", uint32(id), len(g.Buckets))
		for _, b := range g.Buckets {
			for _, a := range b.Actions {
				s += " " + a.String()
			}
			s += " |"
		}
		s += "\n"
	}
	return s
}
