// Package bench regenerates every figure of the paper's evaluation as a Go
// benchmark. Each benchmark runs the corresponding harness measurement and
// reports the figure's metric via b.ReportMetric — ms/op for latency-style
// figures, Mbps for throughput — so `go test -bench . -benchmem` prints the
// same series the paper plots. The micbench command renders the full tables.
package bench

import (
	"testing"

	"mic/internal/addr"
	"mic/internal/harness"
	"mic/internal/maga"
	"mic/internal/sim"
)

// benchSize keeps benchmark iterations fast while preserving the shapes.
const benchSize = 1 << 20

// BenchmarkFig7RouteSetup regenerates Fig 7: route setup time per scheme at
// route length 3 (and per length for the schemes the length affects).
func BenchmarkFig7RouteSetup(b *testing.B) {
	for _, scheme := range harness.AllSchemes() {
		for _, rl := range []int{1, 3, 5} {
			if (scheme == harness.SchemeTCP || scheme == harness.SchemeSSL) && rl != 3 {
				continue // route length does not apply
			}
			b.Run(scheme.String()+"/len="+itoa(rl), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					d, err := harness.SetupTime(scheme, rl, uint64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					total += d.Seconds() * 1e3
				}
				b.ReportMetric(total/float64(b.N), "ms-virtual")
			})
		}
	}
}

// BenchmarkFig8Latency regenerates Fig 8: established-session ping-pong.
func BenchmarkFig8Latency(b *testing.B) {
	for _, scheme := range harness.AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				d, err := harness.PingPongLatency(scheme, 3, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				total += d.Seconds() * 1e3
			}
			b.ReportMetric(total/float64(b.N), "ms-virtual")
		})
	}
}

// BenchmarkFig9aThroughput regenerates Fig 9(a): one-flow throughput.
func BenchmarkFig9aThroughput(b *testing.B) {
	for _, scheme := range harness.AllSchemes() {
		for _, rl := range []int{1, 3, 5} {
			b.Run(scheme.String()+"/len="+itoa(rl), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					r, err := harness.ThroughputOneFlow(scheme, rl, benchSize, uint64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					total += r.Mbps
				}
				b.SetBytes(benchSize)
				b.ReportMetric(total/float64(b.N), "Mbps-virtual")
			})
		}
	}
}

// BenchmarkFig9bMultiFlow regenerates Fig 9(b): average per-flow throughput
// as concurrent flows increase.
func BenchmarkFig9bMultiFlow(b *testing.B) {
	for _, scheme := range []harness.Scheme{harness.SchemeTCP, harness.SchemeMICTCP, harness.SchemeTor} {
		for _, flows := range []int{1, 4, 8} {
			b.Run(scheme.String()+"/flows="+itoa(flows), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					m, err := harness.MultiFlowAvgThroughput(scheme, flows, benchSize, uint64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					total += m
				}
				b.ReportMetric(total/float64(b.N), "Mbps-virtual")
			})
		}
	}
}

// BenchmarkFig9cCPU regenerates Fig 9(c): virtual CPU consumed per scheme
// during the one-flow transfer.
func BenchmarkFig9cCPU(b *testing.B) {
	for _, scheme := range harness.AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				r, err := harness.ThroughputOneFlow(scheme, 3, benchSize, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				util += float64(r.CPUTotal) / float64(r.Wall)
			}
			b.ReportMetric(util/float64(b.N), "cpu-cores-virtual")
		})
	}
}

// BenchmarkAblationGlobalHash measures the MAGA generation + decode path
// that the per-MN-keying ablation (micbench -fig a1) evaluates.
func BenchmarkAblationGlobalHash(b *testing.B) {
	w := maga.DefaultWidths()
	rng := sim.NewRNG(1)
	pa := maga.NewParams(rng.Stream("a"), w)
	pb := maga.NewParams(rng.Stream("b"), w)
	g := maga.NewGenerator(pa, 3, rng.Stream("g"))
	src, dst := addr.V4(10, 0, 0, 1), addr.V4(10, 0, 0, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := g.Label(uint32(i)&255, src, dst)
		_ = pb.FlowIDOf(src, dst, l)
	}
}

// BenchmarkAblationMPLSSplit compares direct inversion against rejection
// sampling for minting a label that satisfies both MAGA constraints.
func BenchmarkAblationMPLSSplit(b *testing.B) {
	w := maga.DefaultWidths()
	rng := sim.NewRNG(1)
	p := maga.NewParams(rng.Stream("p"), w)
	g := maga.NewGenerator(p, 9, rng.Stream("g"))
	src, dst := addr.V4(10, 0, 0, 1), addr.V4(10, 0, 0, 2)
	b.Run("split-inversion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.Label(uint32(i)&255, src, dst)
		}
	})
	b.Run("rejection-sampling", func(b *testing.B) {
		r := sim.NewRNG(2)
		for i := 0; i < b.N; i++ {
			want := uint32(i) & 255
			for {
				l := addr.Label(r.Uint32()) & addr.MaxLabel
				if p.ClassOf(l) == 9 && p.FlowIDOf(src, dst, l) == want {
					break
				}
			}
		}
	})
}

// BenchmarkAblationChannelReuse measures channel establishment (the cost
// that reuse amortizes, micbench -fig a3).
func BenchmarkAblationChannelReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.SetupTime(harness.SchemeMICTCP, 3, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
